#include "net/sync_network.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

// The fiber backend swaps user-space stacks, which ThreadSanitizer cannot
// track without fiber annotations; under TSan the serial schedule falls
// back to OS threads so the checker sees real threads.
#if defined(__SANITIZE_THREAD__)
#define COCA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COCA_TSAN 1
#endif
#endif
#ifndef COCA_TSAN
#define COCA_TSAN 0
#endif

namespace coca::net {

namespace {

/// Thrown into protocol code to unwind runner execution contexts when the
/// controller aborts a run. Deliberately outside the coca::Error hierarchy
/// so protocol code cannot accidentally swallow it.
struct AbortSignal {};

/// mmap-backed fiber stack with a PROT_NONE guard page at the low end, so
/// a protocol overflowing its stack faults deterministically instead of
/// corrupting a neighbouring fiber.
class FiberStack {
 public:
  static constexpr std::size_t kSize = std::size_t{1} << 20;  // 1 MiB

  FiberStack() {
    page_ = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    base_ = ::mmap(nullptr, kSize + page_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    ensure(base_ != MAP_FAILED, "fiber stack mmap failed");
    ::mprotect(base_, page_, PROT_NONE);
  }
  ~FiberStack() { ::munmap(base_, kSize + page_); }
  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  void* sp() { return static_cast<char*>(base_) + page_; }
  std::size_t size() const { return kSize; }

 private:
  void* base_ = nullptr;
  std::size_t page_ = 0;
};

bool fibers_enabled() {
  if (COCA_TSAN) return false;
  // Escape hatch: COCA_NO_FIBERS forces the OS-thread backend everywhere.
  return std::getenv("COCA_NO_FIBERS") == nullptr;
}

}  // namespace

std::vector<Envelope> first_per_sender(const std::vector<Envelope>& inbox) {
  std::vector<Envelope> out;
  out.reserve(inbox.size());
  int last_from = -1;
  for (const Envelope& e : inbox) {  // inbox is ordered by sender id
    if (e.from != last_from) {
      out.push_back(e);  // payload view copy: refcount bump, no byte copy
      last_from = e.from;
    }
  }
  return out;
}

std::vector<Envelope> first_per_sender(std::vector<Envelope>&& inbox) {
  std::size_t kept = 0;
  int last_from = -1;
  for (Envelope& e : inbox) {
    if (e.from != last_from) {
      last_from = e.from;
      if (kept != static_cast<std::size_t>(&e - inbox.data())) {
        inbox[kept] = std::move(e);
      }
      ++kept;
    }
  }
  inbox.resize(kept);
  return std::move(inbox);
}

struct SyncNetwork::Runner {
  int party = -1;
  bool honest = false;  // counts toward honest cost metrics
  // Split-brain recipient filter; nullopt = may talk to everyone.
  std::optional<std::set<int>> allowed;
  // Outgoing-message wrapper for tapped byzantine protocol runners; the
  // local round counter feeds its on_send/on_round_start callbacks. Both
  // are touched only by the runner's own execution context.
  std::shared_ptr<SendTap> tap;
  std::size_t local_round = 0;
  ProtocolFn fn;
  std::unique_ptr<PartyContext> ctx;

  // ---- OS-thread backend (parallel windows, and serial under TSan).
  std::thread thread;
  // Barrier handshake, all guarded by Impl::mu. The controller releases a
  // runner by setting `go` and signalling `cv`; the runner consumes `go`,
  // runs its round slice, and parks again at the next advance(). While
  // `in_flight` it occupies one of the policy's worker-window slots.
  std::condition_variable cv;
  bool go = false;
  bool in_flight = false;

  // ---- Fiber backend (serial schedule): the runner is a cooperative
  // fiber on the controller's thread; a release is one stack swap.
  ucontext_t fiber_ctx = {};
  std::unique_ptr<FiberStack> fiber_stack;
  Impl* impl = nullptr;  // backpointer for the fiber trampoline

  enum class State { AtBarrier, Running, Finished };
  State state = State::AtBarrier;
  std::exception_ptr error;
  std::vector<Envelope> inbox_next;  // written by controller pre-release

  // Runner-local staging and metrics: written only by the runner's own
  // execution context while Running, read by the controller only while the
  // runner is parked at the barrier or finished (the barrier mutex orders
  // these accesses in the thread backend; the fiber backend is single-
  // threaded). Keeping the outbox runner-local is what makes the parallel
  // schedule deterministic: sends never contend, and the controller merges
  // outboxes in canonical runner-table order at the barrier.
  struct Staged {
    int to;
    Payload payload;
  };
  std::vector<Staged> outbox;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::vector<std::string> phase_stack;
  std::map<std::string, std::uint64_t> phase_bytes;

  /// makecontext entry point: runs the protocol function inside the fiber
  /// and swaps back to the controller when it finishes (or unwinds).
  /// makecontext only passes ints, so the Runner pointer travels as halves.
  static void fiber_trampoline(unsigned hi, unsigned lo);
};

struct SyncNetwork::Scripted {
  int party = -1;
  std::shared_ptr<ByzantineStrategy> strategy;
  std::vector<Envelope> inbox;
  std::vector<Envelope> inbox_next;  // pooled build buffer, swapped per round
  std::uint64_t bytes_sent = 0;
  Rng rng{0};
};

struct SyncNetwork::Impl {
  int n = 0;
  std::mutex mu;
  std::condition_variable cv_ctrl;  // controller waits for parks
  std::size_t in_flight = 0;        // runners released and not yet parked
  bool abort = false;
  bool fibers = false;               // backend chosen for the current run()
  ucontext_t controller_ctx = {};
  ExecPolicy policy;                 // default: auto (COCA_THREADS / serial)
  Transcript* transcript = nullptr;  // optional recording sink

  std::vector<std::unique_ptr<Runner>> runners;
  std::vector<std::unique_ptr<Scripted>> scripted;
  std::vector<int> role_of_party;  // 0 = unset, 1 = honest, 2 = byzantine

  /// One delivered (from, to, payload-view) message on the wire.
  struct Triplet {
    int from;
    int to;
    Payload payload;
  };

  // Pooled per-round scratch: cleared (capacity kept) instead of
  // reallocated every round.
  std::vector<Triplet> wire;
  std::vector<Triplet> byz_wire;
  std::vector<RoundView::Sent> honest_traffic;
  // party id -> indices into runners / scripted (built once per run);
  // routing one round is O(messages), not O(messages * parties).
  std::vector<std::vector<std::size_t>> runners_of_party;
  std::vector<std::vector<std::size_t>> scripted_of_party;
  std::vector<std::size_t> runner_msg_count;
  std::vector<std::size_t> scripted_msg_count;

  void build_routing_index() {
    runners_of_party.assign(static_cast<std::size_t>(n), {});
    scripted_of_party.assign(static_cast<std::size_t>(n), {});
    for (std::size_t i = 0; i < runners.size(); ++i) {
      runners_of_party[static_cast<std::size_t>(runners[i]->party)]
          .push_back(i);
    }
    for (std::size_t i = 0; i < scripted.size(); ++i) {
      scripted_of_party[static_cast<std::size_t>(scripted[i]->party)]
          .push_back(i);
    }
    runner_msg_count.assign(runners.size(), 0);
    scripted_msg_count.assign(scripted.size(), 0);
  }

  /// Drains all staged outboxes into `wire` as (from, to, payload) triplets
  /// in canonical order -- runner-table order, send order within a runner --
  /// and sums the bytes honest runners staged. Payloads move; no copies.
  void drain_outboxes(std::uint64_t* honest_bytes) {
    wire.clear();
    for (auto& r : runners) {
      for (auto& staged : r->outbox) {
        if (r->honest) *honest_bytes += staged.payload.size();
        wire.push_back({r->party, staged.to, std::move(staged.payload)});
      }
      r->outbox.clear();
    }
  }

  /// Delivers one round: all runners are parked (or finished), so their
  /// outboxes and metrics are safe to touch. Backend-agnostic; the thread
  /// backend calls this with the barrier mutex held.
  void deliver_round(std::size_t round) {
    std::uint64_t round_honest_bytes = 0;
    drain_outboxes(&round_honest_bytes);
    honest_traffic.clear();
    for (const Triplet& m : wire) {
      honest_traffic.push_back({m.from, m.to, &m.payload});
    }
    // Scripted byzantine parties act last within the round (rushing).
    // Their sends are staged separately: honest_traffic points into `wire`,
    // which must stay unmodified while strategies run.
    byz_wire.clear();
    for (auto& s : scripted) {
      RoundView view;
      view.round = round;
      view.self = s->party;
      view.n = n;
      view.t = t_for_views;
      view.inbox = &s->inbox;
      view.honest_traffic = &honest_traffic;
      view.rng = &s->rng;
      s->strategy->on_round(view, [&](int to, Bytes payload) {
        require(to >= 0 && to < n,
                "ByzantineStrategy sent to out-of-range recipient");
        s->bytes_sent += payload.size();
        byz_wire.push_back({s->party, to, Payload(std::move(payload))});
      });
    }
    for (auto& m : byz_wire) wire.push_back(std::move(m));
    byz_wire.clear();

    // Route, ordered by sender id (stable within a sender).
    std::stable_sort(wire.begin(), wire.end(),
                     [](const Triplet& a, const Triplet& b) {
                       return a.from < b.from;
                     });
    if (transcript != nullptr) {
      Transcript::Round rec;
      rec.honest_bytes = round_honest_bytes;
      rec.messages.reserve(wire.size());
      for (const Triplet& m : wire) {
        rec.messages.push_back({m.from, m.to, m.payload});  // view copy
      }
      transcript->rounds.push_back(std::move(rec));
    }
    // Two-pass routing: count, reserve, fill -- every inbox is one exact
    // allocation and every delivered payload a view of the sender's buffer.
    std::fill(runner_msg_count.begin(), runner_msg_count.end(), 0);
    std::fill(scripted_msg_count.begin(), scripted_msg_count.end(), 0);
    for (const Triplet& m : wire) {
      const auto to = static_cast<std::size_t>(m.to);
      for (const std::size_t i : runners_of_party[to]) ++runner_msg_count[i];
      for (const std::size_t i : scripted_of_party[to]) {
        ++scripted_msg_count[i];
      }
    }
    for (std::size_t i = 0; i < runners.size(); ++i) {
      runners[i]->inbox_next.clear();
      runners[i]->inbox_next.reserve(runner_msg_count[i]);
    }
    for (std::size_t i = 0; i < scripted.size(); ++i) {
      scripted[i]->inbox_next.clear();
      scripted[i]->inbox_next.reserve(scripted_msg_count[i]);
    }
    for (const Triplet& m : wire) {
      const auto to = static_cast<std::size_t>(m.to);
      for (const std::size_t i : runners_of_party[to]) {
        runners[i]->inbox_next.push_back({m.from, m.payload});
      }
      for (const std::size_t i : scripted_of_party[to]) {
        scripted[i]->inbox_next.push_back({m.from, m.payload});
      }
    }
    for (auto& s : scripted) {
      std::swap(s->inbox, s->inbox_next);
      s->inbox_next.clear();
    }
    wire.clear();
  }

  /// Drains leftover sends (staged after a party's last advance()) into a
  /// trailing transcript round so per-round bytes sum to the run totals.
  void record_leftovers() {
    if (transcript == nullptr) return;
    std::uint64_t leftover_honest_bytes = 0;
    drain_outboxes(&leftover_honest_bytes);
    if (wire.empty()) return;
    std::stable_sort(wire.begin(), wire.end(),
                     [](const Triplet& a, const Triplet& b) {
                       return a.from < b.from;
                     });
    Transcript::Round rec;
    rec.honest_bytes = leftover_honest_bytes;
    for (Triplet& m : wire) {
      rec.messages.push_back({m.from, m.to, std::move(m.payload)});
    }
    transcript->rounds.push_back(std::move(rec));
    wire.clear();
  }

  int t_for_views = 0;  // network t, for RoundView

  /// Releases every non-finished runner for one round slice, at most
  /// `window` concurrently, in canonical runner-table order, and waits
  /// until all of them are parked again (or finished). Returns false on
  /// watchdog timeout. Caller holds `lk`. (OS-thread backend.)
  bool run_wave(std::unique_lock<std::mutex>& lk, std::size_t window) {
    std::size_t next = 0;
    for (;;) {
      while (in_flight < window && next < runners.size()) {
        Runner& r = *runners[next++];
        if (r.state == Runner::State::Finished) continue;
        r.go = true;
        r.in_flight = true;
        ++in_flight;
        r.cv.notify_one();
      }
      if (in_flight == 0 && next == runners.size()) return true;
      // Watchdog: a round slice that takes this long means livelock in
      // protocol code (all legitimate slices are short bursts of compute).
      if (!cv_ctrl.wait_for(lk, std::chrono::seconds(300), [&] {
            return in_flight == 0 ||
                   (in_flight < window && next < runners.size());
          })) {
        return false;
      }
    }
  }
};

void SyncNetwork::Runner::fiber_trampoline(unsigned hi, unsigned lo) {
  auto* r = reinterpret_cast<Runner*>((static_cast<std::uintptr_t>(hi) << 32) |
                                      static_cast<std::uintptr_t>(lo));
  try {
    r->state = State::Running;
    r->fn(*r->ctx);
  } catch (const AbortSignal&) {
    // Controller-initiated unwind; not an error.
  } catch (...) {
    r->error = std::current_exception();
  }
  r->state = State::Finished;
  swapcontext(&r->fiber_ctx, &r->impl->controller_ctx);
}

SyncNetwork::SyncNetwork(int n, int t) : n_(n), t_(t) {
  require(n >= 1 && t >= 0 && t < n, "SyncNetwork: need 0 <= t < n");
  impl_ = std::make_unique<Impl>();
  impl_->n = n;
  impl_->t_for_views = t;
  impl_->role_of_party.assign(static_cast<std::size_t>(n), 0);
}

SyncNetwork::~SyncNetwork() {
  // run() joins all threads; if run() was never called, no threads exist.
  for (auto& r : impl_->runners) {
    ensure(!r->thread.joinable(), "SyncNetwork destroyed with live threads");
  }
}

int PartyContext::n() const { return net_.n(); }
int PartyContext::t() const { return net_.t(); }

void PartyContext::send(int to, Bytes payload) {
  net_.runner_send(runner_, to, Payload(std::move(payload)));
}

void PartyContext::send(int to, Payload payload) {
  net_.runner_send(runner_, to, std::move(payload));
}

void PartyContext::send_all(Payload payload) {
  // One shared buffer for all n recipients: each stage is a refcount bump.
  for (int to = 0; to < n(); ++to) net_.runner_send(runner_, to, payload);
}

std::vector<Envelope> PartyContext::advance() {
  return net_.runner_advance(runner_);
}

PartyContext::PhaseScope::PhaseScope(PartyContext& ctx, std::string name)
    : ctx_(ctx) {
  ctx_.net_.runner_push_phase(ctx_.runner_, std::move(name));
}

PartyContext::PhaseScope::~PhaseScope() {
  ctx_.net_.runner_pop_phase(ctx_.runner_);
}

void SyncNetwork::set_honest(int id, ProtocolFn fn) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_honest: bad or already-assigned id");
  impl_->role_of_party[id] = 1;
  auto r = std::make_unique<Runner>();
  r->party = id;
  r->honest = true;
  r->fn = std::move(fn);
  const std::size_t idx = impl_->runners.size();
  r->ctx.reset(new PartyContext(
      *this, idx, id,
      Rng::derive_stream_seed(kRunnerSeedDomain, runner_stream_key(id, idx))));
  impl_->runners.push_back(std::move(r));
}

void SyncNetwork::set_byzantine(int id,
                                std::shared_ptr<ByzantineStrategy> strategy) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_byzantine: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  auto s = std::make_unique<Scripted>();
  s->party = id;
  s->strategy = std::move(strategy);
  s->rng = Rng::stream(kScriptedSeedDomain, static_cast<std::uint64_t>(id));
  impl_->scripted.push_back(std::move(s));
}

void SyncNetwork::set_byzantine_protocol(int id, ProtocolFn fn) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_byzantine_protocol: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  auto r = std::make_unique<Runner>();
  r->party = id;
  r->honest = false;
  r->fn = std::move(fn);
  const std::size_t idx = impl_->runners.size();
  r->ctx.reset(new PartyContext(
      *this, idx, id,
      Rng::derive_stream_seed(kRunnerSeedDomain, runner_stream_key(id, idx))));
  impl_->runners.push_back(std::move(r));
}

void SyncNetwork::set_byzantine_protocol(int id, ProtocolFn fn,
                                         std::shared_ptr<SendTap> tap) {
  set_byzantine_protocol(id, std::move(fn));
  impl_->runners.back()->tap = std::move(tap);
}

void SyncNetwork::set_split_brain(int id, ProtocolFn a, ProtocolFn b,
                                  std::set<int> recipients_of_a) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_split_brain: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  std::set<int> recipients_of_b;
  for (int p = 0; p < n_; ++p) {
    if (!recipients_of_a.contains(p)) recipients_of_b.insert(p);
  }
  for (int half = 0; half < 2; ++half) {
    auto r = std::make_unique<Runner>();
    r->party = id;
    r->honest = false;
    r->allowed = half == 0 ? recipients_of_a : recipients_of_b;
    r->fn = half == 0 ? std::move(a) : std::move(b);
    const std::size_t idx = impl_->runners.size();
    r->ctx.reset(new PartyContext(*this, idx, id,
                                  Rng::derive_stream_seed(
                                      kRunnerSeedDomain,
                                      runner_stream_key(id, idx))));
    impl_->runners.push_back(std::move(r));
  }
}

void SyncNetwork::set_exec_policy(ExecPolicy policy) {
  require(policy.threads >= 0, "SyncNetwork::set_exec_policy: bad threads");
  impl_->policy = policy;
}

void SyncNetwork::set_transcript(Transcript* sink) {
  impl_->transcript = sink;
}

void SyncNetwork::runner_send(std::size_t runner_index, int to,
                              Payload payload) {
  Runner& r = *impl_->runners[runner_index];
  if (r.tap != nullptr) {
    r.tap->on_send(r.local_round, to, std::move(payload),
                   [this, runner_index](int tap_to, Payload tap_payload) {
                     runner_stage(runner_index, tap_to,
                                  std::move(tap_payload));
                   });
    return;
  }
  runner_stage(runner_index, to, std::move(payload));
}

void SyncNetwork::runner_stage(std::size_t runner_index, int to,
                               Payload payload) {
  Runner& r = *impl_->runners[runner_index];
  require(to >= 0 && to < n_, "PartyContext::send: recipient out of range");
  if (r.allowed && !r.allowed->contains(to)) return;  // split-brain filter
  r.bytes_sent += payload.size();
  r.messages_sent += 1;
  for (const std::string& name : r.phase_stack) {
    r.phase_bytes[name] += payload.size();
  }
  r.outbox.push_back({to, std::move(payload)});
}

void SyncNetwork::runner_push_phase(std::size_t runner_index,
                                    std::string name) {
  impl_->runners[runner_index]->phase_stack.push_back(std::move(name));
}

void SyncNetwork::runner_pop_phase(std::size_t runner_index) {
  auto& stack = impl_->runners[runner_index]->phase_stack;
  ensure(!stack.empty(), "phase pop without matching push");
  stack.pop_back();
}

std::vector<Envelope> SyncNetwork::runner_advance(std::size_t runner_index) {
  Runner& r = *impl_->runners[runner_index];
  std::vector<Envelope> inbox;
  if (impl_->fibers) {
    // Cooperative barrier: one stack swap to the controller, which resumes
    // this fiber at the start of the next round slice. No locks: the whole
    // network runs on one OS thread.
    r.state = Runner::State::AtBarrier;
    swapcontext(&r.fiber_ctx, &impl_->controller_ctx);
    if (impl_->abort) throw AbortSignal{};
    r.state = Runner::State::Running;
    inbox = std::exchange(r.inbox_next, {});
  } else {
    std::unique_lock lk(impl_->mu);
    r.state = Runner::State::AtBarrier;
    if (r.in_flight) {
      r.in_flight = false;
      --impl_->in_flight;
    }
    impl_->cv_ctrl.notify_one();
    r.cv.wait(lk, [&] { return r.go || impl_->abort; });
    if (impl_->abort) throw AbortSignal{};
    r.go = false;
    r.state = Runner::State::Running;
    inbox = std::exchange(r.inbox_next, {});
  }
  // The runner entered the next round; let a tap flush held-back messages
  // before the wrapped protocol stages its own (staging is runner-local).
  ++r.local_round;
  if (r.tap != nullptr) {
    r.tap->on_round_start(r.local_round,
                          [this, runner_index](int to, Payload payload) {
                            runner_stage(runner_index, to, std::move(payload));
                          });
  }
  return inbox;
}

RunStats SyncNetwork::run(std::size_t max_rounds) {
  Impl& im = *impl_;
  for (int p = 0; p < n_; ++p) {
    require(im.role_of_party[p] != 0,
            "SyncNetwork::run: every party needs a role before running");
  }
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, im.policy.window()));
  im.fibers = window == 1 && fibers_enabled();
  if (im.transcript) im.transcript->rounds.clear();
  im.build_routing_index();
  const std::uint64_t copies_before = PayloadMetrics::copies();
  const std::uint64_t bytes_copied_before = PayloadMetrics::bytes_copied();

  std::size_t rounds = 0;
  std::exception_ptr failure;
  std::string failure_reason;

  if (im.fibers) {
    // ---- Fiber backend: every runner is a cooperative fiber; the
    // controller swaps into each in canonical order, delivers, repeats.
    for (auto& rp : im.runners) {
      Runner& r = *rp;
      r.impl = &im;
      r.fiber_stack = std::make_unique<FiberStack>();
      getcontext(&r.fiber_ctx);
      r.fiber_ctx.uc_stack.ss_sp = r.fiber_stack->sp();
      r.fiber_ctx.uc_stack.ss_size = r.fiber_stack->size();
      r.fiber_ctx.uc_link = &im.controller_ctx;
      const auto ptr = reinterpret_cast<std::uintptr_t>(&r);
      makecontext(&r.fiber_ctx,
                  reinterpret_cast<void (*)()>(&Runner::fiber_trampoline), 2,
                  static_cast<unsigned>(ptr >> 32),
                  static_cast<unsigned>(ptr & 0xFFFFFFFFu));
    }
    const auto all_finished = [&] {
      return std::all_of(im.runners.begin(), im.runners.end(), [](auto& r) {
        return r->state == Runner::State::Finished;
      });
    };
    for (;;) {
      for (auto& rp : im.runners) {
        if (rp->state == Runner::State::Finished) continue;
        swapcontext(&im.controller_ctx, &rp->fiber_ctx);
      }
      for (auto& r : im.runners) {
        if (r->error && !failure) failure = r->error;
      }
      if (failure) break;
      if (all_finished()) break;
      if (rounds >= max_rounds) {
        failure_reason = "SyncNetwork: max round count exceeded";
        break;
      }
      im.deliver_round(rounds);
      ++rounds;
    }
    if (failure || !failure_reason.empty()) {
      // Unwind every parked fiber so protocol stack frames run their
      // destructors before the stacks are freed.
      im.abort = true;
      for (auto& rp : im.runners) {
        if (rp->state != Runner::State::Finished) {
          swapcontext(&im.controller_ctx, &rp->fiber_ctx);
        }
      }
      im.abort = false;
    } else {
      im.record_leftovers();
    }
    for (auto& rp : im.runners) rp->fiber_stack.reset();
  } else {
    // ---- OS-thread backend. Launch runner threads; each waits for its
    // first release so that the pre-first-advance protocol segment obeys
    // the same schedule as every later round slice.
    for (auto& rp : im.runners) {
      Runner& r = *rp;
      r.thread = std::thread([this, &r] {
        try {
          {
            std::unique_lock lk(impl_->mu);
            r.cv.wait(lk, [&] { return r.go || impl_->abort; });
            if (impl_->abort) throw AbortSignal{};
            r.go = false;
            r.state = Runner::State::Running;
          }
          r.fn(*r.ctx);
        } catch (const AbortSignal&) {
          // Controller-initiated unwind; not an error.
        } catch (...) {
          std::lock_guard lk(impl_->mu);
          r.error = std::current_exception();
        }
        std::lock_guard lk(impl_->mu);
        r.state = Runner::State::Finished;
        if (r.in_flight) {
          r.in_flight = false;
          --impl_->in_flight;
        }
        impl_->cv_ctrl.notify_one();
      });
    }

    {
      std::unique_lock lk(im.mu);
      const auto all_finished = [&] {
        return std::all_of(im.runners.begin(), im.runners.end(), [](auto& r) {
          return r->state == Runner::State::Finished;
        });
      };
      for (;;) {
        if (!im.run_wave(lk, window)) {
          failure_reason = "SyncNetwork: round stalled (watchdog)";
          break;
        }
        for (auto& r : im.runners) {
          if (r->error && !failure) failure = r->error;
        }
        if (failure) break;
        if (all_finished()) break;
        if (rounds >= max_rounds) {
          failure_reason = "SyncNetwork: max round count exceeded";
          break;
        }
        // All runners are parked; deliver one round.
        im.deliver_round(rounds);
        ++rounds;
      }

      if (failure || !failure_reason.empty()) {
        im.abort = true;
        for (auto& r : im.runners) r->cv.notify_one();
      } else {
        im.record_leftovers();
      }
    }

    for (auto& r : im.runners) {
      if (r->thread.joinable()) r->thread.join();
    }
  }

  if (failure) std::rethrow_exception(failure);
  if (!failure_reason.empty()) throw Error(failure_reason.c_str());

  RunStats stats;
  stats.rounds = rounds;
  stats.payload_copies = PayloadMetrics::copies() - copies_before;
  stats.payload_bytes_copied =
      PayloadMetrics::bytes_copied() - bytes_copied_before;
  stats.bytes_by_party.assign(static_cast<std::size_t>(n_), 0);
  for (const auto& r : im.runners) {
    stats.bytes_by_party[static_cast<std::size_t>(r->party)] += r->bytes_sent;
    if (r->honest) {
      stats.honest_bytes += r->bytes_sent;
      stats.honest_messages += r->messages_sent;
      for (const auto& [name, bytes] : r->phase_bytes) {
        stats.honest_bytes_by_phase[name] += bytes;
      }
    }
  }
  for (const auto& s : im.scripted) {
    stats.bytes_by_party[static_cast<std::size_t>(s->party)] += s->bytes_sent;
  }
  return stats;
}

}  // namespace coca::net
