#include "net/sync_network.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace coca::net {

namespace {

/// Thrown into protocol code to unwind runner threads when the controller
/// aborts a run. Deliberately outside the coca::Error hierarchy so protocol
/// code cannot accidentally swallow it.
struct AbortSignal {};

}  // namespace

std::vector<Envelope> first_per_sender(const std::vector<Envelope>& inbox) {
  std::vector<Envelope> out;
  out.reserve(inbox.size());
  int last_from = -1;
  for (const Envelope& e : inbox) {  // inbox is ordered by sender id
    if (e.from != last_from) {
      out.push_back(e);
      last_from = e.from;
    }
  }
  return out;
}

struct SyncNetwork::Runner {
  int party = -1;
  bool honest = false;  // counts toward honest cost metrics
  // Split-brain recipient filter; nullopt = may talk to everyone.
  std::optional<std::set<int>> allowed;
  // Outgoing-message wrapper for tapped byzantine protocol runners; the
  // local round counter feeds its on_send/on_round_start callbacks. Both
  // are touched only by the runner's own thread.
  std::shared_ptr<SendTap> tap;
  std::size_t local_round = 0;
  ProtocolFn fn;
  std::unique_ptr<PartyContext> ctx;
  std::thread thread;

  // Barrier handshake, all guarded by Impl::mu. The controller releases a
  // runner by setting `go` and signalling `cv`; the runner consumes `go`,
  // runs its round slice, and parks again at the next advance(). While
  // `in_flight` it occupies one of the policy's worker-window slots.
  std::condition_variable cv;
  bool go = false;
  bool in_flight = false;
  enum class State { AtBarrier, Running, Finished };
  State state = State::AtBarrier;
  std::exception_ptr error;
  std::vector<Envelope> inbox_next;  // written by controller pre-release

  // Runner-local staging and metrics: written only by the runner thread
  // while Running, read by the controller only while the runner is parked
  // at the barrier or finished (the barrier mutex orders these accesses).
  // Keeping the outbox thread-local is what makes the parallel schedule
  // deterministic: sends never contend, and the controller merges outboxes
  // in canonical runner-table order at the barrier.
  struct Staged {
    int to;
    Bytes payload;
  };
  std::vector<Staged> outbox;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::vector<std::string> phase_stack;
  std::map<std::string, std::uint64_t> phase_bytes;
};

struct SyncNetwork::Scripted {
  int party = -1;
  std::shared_ptr<ByzantineStrategy> strategy;
  std::vector<Envelope> inbox;
  std::uint64_t bytes_sent = 0;
  Rng rng{0};
};

struct SyncNetwork::Impl {
  std::mutex mu;
  std::condition_variable cv_ctrl;  // controller waits for parks
  std::size_t in_flight = 0;        // runners released and not yet parked
  bool abort = false;
  ExecPolicy policy;                 // default: auto (COCA_THREADS / serial)
  Transcript* transcript = nullptr;  // optional recording sink

  std::vector<std::unique_ptr<Runner>> runners;
  std::vector<std::unique_ptr<Scripted>> scripted;
  std::vector<int> role_of_party;  // 0 = unset, 1 = honest, 2 = byzantine

  /// Releases every non-finished runner for one round slice, at most
  /// `window` concurrently, in canonical runner-table order, and waits
  /// until all of them are parked again (or finished). Returns false on
  /// watchdog timeout. Caller holds `lk`.
  bool run_wave(std::unique_lock<std::mutex>& lk, std::size_t window) {
    std::size_t next = 0;
    for (;;) {
      while (in_flight < window && next < runners.size()) {
        Runner& r = *runners[next++];
        if (r.state == Runner::State::Finished) continue;
        r.go = true;
        r.in_flight = true;
        ++in_flight;
        r.cv.notify_one();
      }
      if (in_flight == 0 && next == runners.size()) return true;
      // Watchdog: a round slice that takes this long means livelock in
      // protocol code (all legitimate slices are short bursts of compute).
      if (!cv_ctrl.wait_for(lk, std::chrono::seconds(300), [&] {
            return in_flight == 0 ||
                   (in_flight < window && next < runners.size());
          })) {
        return false;
      }
    }
  }
};

SyncNetwork::SyncNetwork(int n, int t) : n_(n), t_(t) {
  require(n >= 1 && t >= 0 && t < n, "SyncNetwork: need 0 <= t < n");
  impl_ = std::make_unique<Impl>();
  impl_->role_of_party.assign(static_cast<std::size_t>(n), 0);
}

SyncNetwork::~SyncNetwork() {
  // run() joins all threads; if run() was never called, no threads exist.
  for (auto& r : impl_->runners) {
    ensure(!r->thread.joinable(), "SyncNetwork destroyed with live threads");
  }
}

int PartyContext::n() const { return net_.n(); }
int PartyContext::t() const { return net_.t(); }

void PartyContext::send(int to, Bytes payload) {
  net_.runner_send(runner_, to, std::move(payload));
}

void PartyContext::send_all(const Bytes& payload) {
  for (int to = 0; to < n(); ++to) send(to, payload);
}

std::vector<Envelope> PartyContext::advance() {
  return net_.runner_advance(runner_);
}

PartyContext::PhaseScope::PhaseScope(PartyContext& ctx, std::string name)
    : ctx_(ctx) {
  ctx_.net_.runner_push_phase(ctx_.runner_, std::move(name));
}

PartyContext::PhaseScope::~PhaseScope() {
  ctx_.net_.runner_pop_phase(ctx_.runner_);
}

void SyncNetwork::set_honest(int id, ProtocolFn fn) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_honest: bad or already-assigned id");
  impl_->role_of_party[id] = 1;
  auto r = std::make_unique<Runner>();
  r->party = id;
  r->honest = true;
  r->fn = std::move(fn);
  const std::size_t idx = impl_->runners.size();
  r->ctx.reset(new PartyContext(
      *this, idx, id,
      Rng::derive_stream_seed(kRunnerSeedDomain, runner_stream_key(id, idx))));
  impl_->runners.push_back(std::move(r));
}

void SyncNetwork::set_byzantine(int id,
                                std::shared_ptr<ByzantineStrategy> strategy) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_byzantine: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  auto s = std::make_unique<Scripted>();
  s->party = id;
  s->strategy = std::move(strategy);
  s->rng = Rng::stream(kScriptedSeedDomain, static_cast<std::uint64_t>(id));
  impl_->scripted.push_back(std::move(s));
}

void SyncNetwork::set_byzantine_protocol(int id, ProtocolFn fn) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_byzantine_protocol: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  auto r = std::make_unique<Runner>();
  r->party = id;
  r->honest = false;
  r->fn = std::move(fn);
  const std::size_t idx = impl_->runners.size();
  r->ctx.reset(new PartyContext(
      *this, idx, id,
      Rng::derive_stream_seed(kRunnerSeedDomain, runner_stream_key(id, idx))));
  impl_->runners.push_back(std::move(r));
}

void SyncNetwork::set_byzantine_protocol(int id, ProtocolFn fn,
                                         std::shared_ptr<SendTap> tap) {
  set_byzantine_protocol(id, std::move(fn));
  impl_->runners.back()->tap = std::move(tap);
}

void SyncNetwork::set_split_brain(int id, ProtocolFn a, ProtocolFn b,
                                  std::set<int> recipients_of_a) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_split_brain: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  std::set<int> recipients_of_b;
  for (int p = 0; p < n_; ++p) {
    if (!recipients_of_a.contains(p)) recipients_of_b.insert(p);
  }
  for (int half = 0; half < 2; ++half) {
    auto r = std::make_unique<Runner>();
    r->party = id;
    r->honest = false;
    r->allowed = half == 0 ? recipients_of_a : recipients_of_b;
    r->fn = half == 0 ? std::move(a) : std::move(b);
    const std::size_t idx = impl_->runners.size();
    r->ctx.reset(new PartyContext(*this, idx, id,
                                  Rng::derive_stream_seed(
                                      kRunnerSeedDomain,
                                      runner_stream_key(id, idx))));
    impl_->runners.push_back(std::move(r));
  }
}

void SyncNetwork::set_exec_policy(ExecPolicy policy) {
  require(policy.threads >= 0, "SyncNetwork::set_exec_policy: bad threads");
  impl_->policy = policy;
}

void SyncNetwork::set_transcript(Transcript* sink) {
  impl_->transcript = sink;
}

void SyncNetwork::runner_send(std::size_t runner_index, int to, Bytes payload) {
  Runner& r = *impl_->runners[runner_index];
  if (r.tap != nullptr) {
    r.tap->on_send(r.local_round, to, std::move(payload),
                   [this, runner_index](int tap_to, Bytes tap_payload) {
                     runner_stage(runner_index, tap_to, std::move(tap_payload));
                   });
    return;
  }
  runner_stage(runner_index, to, std::move(payload));
}

void SyncNetwork::runner_stage(std::size_t runner_index, int to,
                               Bytes payload) {
  Runner& r = *impl_->runners[runner_index];
  require(to >= 0 && to < n_, "PartyContext::send: recipient out of range");
  if (r.allowed && !r.allowed->contains(to)) return;  // split-brain filter
  r.bytes_sent += payload.size();
  r.messages_sent += 1;
  for (const std::string& name : r.phase_stack) {
    r.phase_bytes[name] += payload.size();
  }
  r.outbox.push_back({to, std::move(payload)});
}

void SyncNetwork::runner_push_phase(std::size_t runner_index,
                                    std::string name) {
  impl_->runners[runner_index]->phase_stack.push_back(std::move(name));
}

void SyncNetwork::runner_pop_phase(std::size_t runner_index) {
  auto& stack = impl_->runners[runner_index]->phase_stack;
  ensure(!stack.empty(), "phase pop without matching push");
  stack.pop_back();
}

std::vector<Envelope> SyncNetwork::runner_advance(std::size_t runner_index) {
  Runner& r = *impl_->runners[runner_index];
  std::vector<Envelope> inbox;
  {
    std::unique_lock lk(impl_->mu);
    r.state = Runner::State::AtBarrier;
    if (r.in_flight) {
      r.in_flight = false;
      --impl_->in_flight;
    }
    impl_->cv_ctrl.notify_one();
    r.cv.wait(lk, [&] { return r.go || impl_->abort; });
    if (impl_->abort) throw AbortSignal{};
    r.go = false;
    r.state = Runner::State::Running;
    inbox = std::exchange(r.inbox_next, {});
  }
  // The runner entered the next round; let a tap flush held-back messages
  // before the wrapped protocol stages its own (lock released: staging is
  // runner-local).
  ++r.local_round;
  if (r.tap != nullptr) {
    r.tap->on_round_start(r.local_round,
                          [this, runner_index](int to, Bytes payload) {
                            runner_stage(runner_index, to, std::move(payload));
                          });
  }
  return inbox;
}

RunStats SyncNetwork::run(std::size_t max_rounds) {
  Impl& im = *impl_;
  for (int p = 0; p < n_; ++p) {
    require(im.role_of_party[p] != 0,
            "SyncNetwork::run: every party needs a role before running");
  }
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, im.policy.window()));
  if (im.transcript) im.transcript->rounds.clear();

  // Launch runner threads. Each waits for its first release so that the
  // pre-first-advance protocol segment obeys the same schedule as every
  // later round slice.
  for (auto& rp : im.runners) {
    Runner& r = *rp;
    r.thread = std::thread([this, &r] {
      try {
        {
          std::unique_lock lk(impl_->mu);
          r.cv.wait(lk, [&] { return r.go || impl_->abort; });
          if (impl_->abort) throw AbortSignal{};
          r.go = false;
          r.state = Runner::State::Running;
        }
        r.fn(*r.ctx);
      } catch (const AbortSignal&) {
        // Controller-initiated unwind; not an error.
      } catch (...) {
        std::lock_guard lk(impl_->mu);
        r.error = std::current_exception();
      }
      std::lock_guard lk(impl_->mu);
      r.state = Runner::State::Finished;
      if (r.in_flight) {
        r.in_flight = false;
        --impl_->in_flight;
      }
      impl_->cv_ctrl.notify_one();
    });
  }

  std::size_t rounds = 0;
  std::exception_ptr failure;
  std::string failure_reason;

  {
    std::unique_lock lk(im.mu);
    const auto all_finished = [&] {
      return std::all_of(im.runners.begin(), im.runners.end(), [](auto& r) {
        return r->state == Runner::State::Finished;
      });
    };

    // Drains all staged outboxes into (from, to, payload) triplets in
    // canonical order -- runner-table order, send order within a runner --
    // and sums the bytes honest runners staged.
    struct Triplet {
      int from;
      int to;
      Bytes payload;
    };
    const auto drain_outboxes = [&](std::uint64_t* honest_bytes) {
      std::vector<Triplet> wire;
      for (auto& r : im.runners) {
        for (auto& staged : r->outbox) {
          if (r->honest) *honest_bytes += staged.payload.size();
          wire.push_back({r->party, staged.to, std::move(staged.payload)});
        }
        r->outbox.clear();
      }
      return wire;
    };

    for (;;) {
      if (!im.run_wave(lk, window)) {
        failure_reason = "SyncNetwork: round stalled (watchdog)";
        break;
      }
      for (auto& r : im.runners) {
        if (r->error && !failure) failure = r->error;
      }
      if (failure) break;
      if (all_finished()) break;
      if (rounds >= max_rounds) {
        failure_reason = "SyncNetwork: max round count exceeded";
        break;
      }

      // ---- Deliver one round. All runners are parked; their outboxes and
      // metrics are safe to touch from here.
      std::uint64_t round_honest_bytes = 0;
      std::vector<Triplet> wire = drain_outboxes(&round_honest_bytes);
      std::vector<RoundView::Sent> honest_traffic;
      for (const Triplet& m : wire) {
        honest_traffic.push_back({m.from, m.to, &m.payload});
      }
      // Scripted byzantine parties act last within the round (rushing).
      // Their sends are staged separately: honest_traffic points into `wire`,
      // which must stay unmodified while strategies run.
      std::vector<Triplet> byz_wire;
      for (auto& s : im.scripted) {
        RoundView view;
        view.round = rounds;
        view.self = s->party;
        view.n = n_;
        view.t = t_;
        view.inbox = &s->inbox;
        view.honest_traffic = &honest_traffic;
        view.rng = &s->rng;
        s->strategy->on_round(view, [&](int to, Bytes payload) {
          require(to >= 0 && to < n_,
                  "ByzantineStrategy sent to out-of-range recipient");
          s->bytes_sent += payload.size();
          byz_wire.push_back({s->party, to, std::move(payload)});
        });
      }
      for (auto& m : byz_wire) wire.push_back(std::move(m));

      // Route, ordered by sender id (stable within a sender).
      std::stable_sort(wire.begin(), wire.end(),
                       [](const Triplet& a, const Triplet& b) {
                         return a.from < b.from;
                       });
      if (im.transcript) {
        Transcript::Round rec;
        rec.honest_bytes = round_honest_bytes;
        rec.messages.reserve(wire.size());
        for (const Triplet& m : wire) {
          rec.messages.push_back({m.from, m.to, m.payload});
        }
        im.transcript->rounds.push_back(std::move(rec));
      }
      std::vector<std::vector<Envelope>> runner_inbox(im.runners.size());
      std::vector<std::vector<Envelope>> scripted_inbox(im.scripted.size());
      for (const Triplet& m : wire) {
        for (std::size_t i = 0; i < im.runners.size(); ++i) {
          if (im.runners[i]->party == m.to) {
            runner_inbox[i].push_back({m.from, m.payload});
          }
        }
        for (std::size_t i = 0; i < im.scripted.size(); ++i) {
          if (im.scripted[i]->party == m.to) {
            scripted_inbox[i].push_back({m.from, m.payload});
          }
        }
      }
      for (std::size_t i = 0; i < im.runners.size(); ++i) {
        im.runners[i]->inbox_next = std::move(runner_inbox[i]);
      }
      for (std::size_t i = 0; i < im.scripted.size(); ++i) {
        im.scripted[i]->inbox = std::move(scripted_inbox[i]);
      }

      ++rounds;
    }

    if (failure || !failure_reason.empty()) {
      im.abort = true;
      for (auto& r : im.runners) r->cv.notify_one();
    } else if (im.transcript) {
      // Sends staged after a party's last advance() were never delivered but
      // do count as sent; surface them as a trailing transcript round so
      // per-round bytes sum to the run totals.
      std::uint64_t leftover_honest_bytes = 0;
      std::vector<Triplet> leftovers = drain_outboxes(&leftover_honest_bytes);
      if (!leftovers.empty()) {
        std::stable_sort(leftovers.begin(), leftovers.end(),
                         [](const Triplet& a, const Triplet& b) {
                           return a.from < b.from;
                         });
        Transcript::Round rec;
        rec.honest_bytes = leftover_honest_bytes;
        for (const Triplet& m : leftovers) {
          rec.messages.push_back({m.from, m.to, m.payload});
        }
        im.transcript->rounds.push_back(std::move(rec));
      }
    }
  }

  for (auto& r : im.runners) {
    if (r->thread.joinable()) r->thread.join();
  }
  if (failure) std::rethrow_exception(failure);
  if (!failure_reason.empty()) throw Error(failure_reason.c_str());

  RunStats stats;
  stats.rounds = rounds;
  stats.bytes_by_party.assign(static_cast<std::size_t>(n_), 0);
  for (const auto& r : im.runners) {
    stats.bytes_by_party[static_cast<std::size_t>(r->party)] += r->bytes_sent;
    if (r->honest) {
      stats.honest_bytes += r->bytes_sent;
      stats.honest_messages += r->messages_sent;
      for (const auto& [name, bytes] : r->phase_bytes) {
        stats.honest_bytes_by_phase[name] += bytes;
      }
    }
  }
  for (const auto& s : im.scripted) {
    stats.bytes_by_party[static_cast<std::size_t>(s->party)] += s->bytes_sent;
  }
  return stats;
}

}  // namespace coca::net
