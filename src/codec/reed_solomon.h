// Systematic Reed-Solomon erasure codes over GF(2^16) (Section 7).
//
// RS.ENCODE(v) splits a value into n codewords of O(|v|/n) bits such that any
// k = n - t of them reconstruct v (RS.DECODE). In Pi_lBA+ corrupted codewords
// are detected and discarded via Merkle witnesses before decoding, so an
// erasure-only decoder (Lagrange interpolation from k verified shares)
// suffices -- no error correction is needed, exactly as in the paper.
//
// Layout: the payload is padded to whole chunks of k 16-bit symbols. Chunk
// symbols are the polynomial values at evaluation points 0..k-1 (systematic);
// share i carries the value at point i for every chunk, so share size is
// 2 * ceil(|data| / 2k) bytes.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "codec/gf16.h"
#include "util/common.h"

namespace coca::codec {

class ReedSolomon {
 public:
  /// Code with `n` shares, any `k` of which reconstruct. Requires
  /// 1 <= k <= n <= 65535.
  ReedSolomon(std::size_t n, std::size_t k);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }

  /// Size in bytes of each share for a payload of `data_size` bytes.
  std::size_t share_size(std::size_t data_size) const {
    return 2 * std::max<std::size_t>(1, ceil_div(data_size, 2 * k_));
  }

  /// RS.ENCODE: n shares; share i is the evaluation at point i.
  std::vector<Bytes> encode(const Bytes& data) const;

  /// Cross-instance RS.ENCODE: one share vector per payload, each
  /// bit-identical to encode() on that payload alone. Payloads route
  /// independently through the small-buffer reference path or the wide
  /// table-driven path by their own share size; all wide parity work is
  /// flushed as one axpy_be_batch job list -- one MulBy table build per
  /// distinct parity coefficient across the whole batch -- under a single
  /// obs span. The pointer form batches scattered payloads (e.g. parked on
  /// different fiber stacks) without gathering them; pointers must be
  /// non-null and stay valid for the call.
  std::vector<std::vector<Bytes>> encode_batch(
      std::span<const Bytes* const> batch) const;
  std::vector<std::vector<Bytes>> encode_batch(
      std::span<const Bytes> batch) const;

  /// RS.DECODE: reconstruct a `data_size`-byte payload from >= k shares
  /// given as (share index, share bytes) pairs. Returns nullopt when the
  /// input is unusable (too few distinct valid-size shares, bad indices).
  /// Inconsistent-but-plausible shares yield a wrong payload, as with real
  /// RS erasure decoding; callers authenticate shares beforehand.
  std::optional<Bytes> decode(
      const std::vector<std::pair<std::size_t, Bytes>>& shares,
      std::size_t data_size) const;

 private:
  std::size_t n_;
  std::size_t k_;
  // parity_[r][j]: Lagrange basis L_j (through points 0..k-1) evaluated at
  // point k+r, so parity symbol r = sum_j data_j * parity_[r][j].
  std::vector<std::vector<GF16::Elem>> parity_;
};

/// Reference implementation: the original chunk-major scalar encoder and
/// decoder, one field mul per symbol through the log/exp tables. The
/// production paths above are table-driven and share-major; these stay as
/// (a) the differential-test oracle -- independent down to the symbol mul --
/// and (b) the small-buffer fallback where MulBy table construction would
/// dominate. Bit-for-bit output equality with ReedSolomon is a tested
/// invariant (the wire format is pinned by replay corpora and transcripts).
namespace ref_ {

std::vector<Bytes> encode(std::size_t n, std::size_t k, const Bytes& data);

std::optional<Bytes> decode(
    std::size_t n, std::size_t k,
    const std::vector<std::pair<std::size_t, Bytes>>& shares,
    std::size_t data_size);

}  // namespace ref_

}  // namespace coca::codec
