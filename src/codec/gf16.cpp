#include "codec/gf16.h"

namespace coca::codec {

namespace {

// Candidate degree-16 polynomials over GF(2); the constructor verifies
// primitivity, so an error in this list is caught at startup, not at decode.
constexpr std::uint32_t kCandidatePolys[] = {
    0x1100B,  // x^16 + x^12 + x^3 + x + 1
    0x1002D,  // x^16 + x^5 + x^3 + x^2 + 1
    0x100B7,  // x^16 + x^7 + x^5 + x^4 + x^2 + x + 1
};

}  // namespace

GF16::GF16() {
  for (const std::uint32_t poly : kCandidatePolys) {
    // Walk powers of alpha = x. If x is a primitive element modulo `poly`,
    // the walk visits every nonzero element exactly once before returning
    // to 1 after kOrder steps.
    bool seen[kOrder + 1] = {};
    std::uint32_t x = 1;
    bool ok = true;
    for (std::size_t i = 0; i < kOrder; ++i) {
      if (x == 0 || x > 0xFFFF || seen[x]) {
        ok = false;
        break;
      }
      seen[x] = true;
      exp_[i] = static_cast<Elem>(x);
      log_[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000U) x ^= poly;
    }
    if (ok && x == 1) {
      for (std::size_t i = 0; i < kOrder; ++i) exp_[kOrder + i] = exp_[i];
      return;
    }
    // Not primitive: reset and try the next candidate.
    for (auto& e : exp_) e = 0;
    for (auto& l : log_) l = 0;
  }
  ensure(false, "no primitive polynomial candidate for GF(2^16) validated");
}

const GF16& GF16::instance() {
  static const GF16 field;
  return field;
}

}  // namespace coca::codec
