#include "codec/gf16.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <optional>
#include <vector>

namespace coca::codec {

namespace {

// Candidate degree-16 polynomials over GF(2); the constructor verifies
// primitivity, so an error in this list is caught at startup, not at decode.
constexpr std::uint32_t kCandidatePolys[] = {
    0x1100B,  // x^16 + x^12 + x^3 + x + 1
    0x1002D,  // x^16 + x^5 + x^3 + x^2 + 1
    0x100B7,  // x^16 + x^7 + x^5 + x^4 + x^2 + x + 1
};

}  // namespace

GF16::GF16() {
  for (const std::uint32_t poly : kCandidatePolys) {
    // Walk powers of alpha = x. If x is a primitive element modulo `poly`,
    // the walk visits every nonzero element exactly once before returning
    // to 1 after kOrder steps.
    bool seen[kOrder + 1] = {};
    std::uint32_t x = 1;
    bool ok = true;
    for (std::size_t i = 0; i < kOrder; ++i) {
      if (x == 0 || x > 0xFFFF || seen[x]) {
        ok = false;
        break;
      }
      seen[x] = true;
      exp_[i] = static_cast<Elem>(x);
      log_[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000U) x ^= poly;
    }
    if (ok && x == 1) {
      for (std::size_t i = 0; i < kOrder; ++i) exp_[kOrder + i] = exp_[i];
      return;
    }
    // Not primitive: reset and try the next candidate.
    for (auto& e : exp_) e = 0;
    for (auto& l : log_) l = 0;
  }
  ensure(false, "no primitive polynomial candidate for GF(2^16) validated");
}

const GF16& GF16::instance() {
  static const GF16 field;
  return field;
}

MulBy::MulBy(const GF16& f, Elem c) {
  // Packed nibble tables: c * (d << 4s) for every nibble value d and nibble
  // position s. 64 field muls, the only ones this constructor performs.
  Elem nib[4][16];
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 16; ++d) {
      nib[s][d] = f.mul(c, static_cast<Elem>(d << (4 * s)));
    }
  }
  // Fold nibble pairs into byte tables by GF(2)-linearity: XORs only.
  for (int b = 0; b < 256; ++b) {
    lo_[b] = static_cast<Elem>(nib[0][b & 15] ^ nib[1][b >> 4]);
    hi_[b] = static_cast<Elem>(nib[2][b & 15] ^ nib[3][b >> 4]);
  }
}

void MulBy::mul_be(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t bytes) const {
  std::size_t i = 0;
  // Four symbols per iteration; the products are packed into one 64-bit
  // lane and stored with a single memcpy (endian-agnostic: the lane is
  // treated as bytes at both ends).
  for (; i + 8 <= bytes; i += 8) {
    std::uint8_t lane[8];
    for (std::size_t s = 0; s < 8; s += 2) {
      const Elem y = static_cast<Elem>(lo_[src[i + s + 1]] ^ hi_[src[i + s]]);
      lane[s] = static_cast<std::uint8_t>(y >> 8);
      lane[s + 1] = static_cast<std::uint8_t>(y);
    }
    std::memcpy(dst + i, lane, 8);
  }
  for (; i + 2 <= bytes; i += 2) {
    const Elem y = static_cast<Elem>(lo_[src[i + 1]] ^ hi_[src[i]]);
    dst[i] = static_cast<std::uint8_t>(y >> 8);
    dst[i + 1] = static_cast<std::uint8_t>(y);
  }
}

void MulBy::axpy_be(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t bytes) const {
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint8_t lane[8];
    for (std::size_t s = 0; s < 8; s += 2) {
      const Elem y = static_cast<Elem>(lo_[src[i + s + 1]] ^ hi_[src[i + s]]);
      lane[s] = static_cast<std::uint8_t>(y >> 8);
      lane[s + 1] = static_cast<std::uint8_t>(y);
    }
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, lane, 8);
    a ^= b;  // the 64-bit-wide accumulate
    std::memcpy(dst + i, &a, 8);
  }
  for (; i + 2 <= bytes; i += 2) {
    const Elem y = static_cast<Elem>(lo_[src[i + 1]] ^ hi_[src[i]]);
    dst[i] ^= static_cast<std::uint8_t>(y >> 8);
    dst[i + 1] ^= static_cast<std::uint8_t>(y);
  }
}

void axpy_be_batch(const GF16& f, std::span<const AxpyJob> jobs) {
  for (const AxpyJob& job : jobs) {
    require(job.bytes % 2 == 0, "axpy_be_batch: need even byte counts");
  }
  // Group job indices by coefficient so each distinct nonzero c pays for
  // one MulBy table build. stable_sort keeps same-coefficient jobs in
  // submission order; jobs on distinct buffers commute and same-buffer
  // accumulates are XORs, so any grouping is bit-identical to per-job axpy.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&jobs](std::size_t a, std::size_t b) {
                     return jobs[a].c < jobs[b].c;
                   });
  GF16::Elem current = 0;  // c == 0 jobs are no-ops and sort first
  std::optional<MulBy> mb;
  for (const std::size_t idx : order) {
    const AxpyJob& job = jobs[idx];
    if (job.c == 0 || job.bytes == 0) continue;
    if (!mb || job.c != current) {
      current = job.c;
      mb.emplace(f, current);
    }
    mb->axpy_be(job.dst, job.src, job.bytes);
  }
}

}  // namespace coca::codec
