#include "codec/reed_solomon.h"

#include <algorithm>

namespace coca::codec {

namespace {

using Elem = GF16::Elem;

// Evaluates all k Lagrange basis polynomials through the distinct points
// `xs` at the point `p`: out[j] = L_j(p).
std::vector<Elem> lagrange_row(const GF16& f, const std::vector<Elem>& xs,
                               Elem p) {
  const std::size_t k = xs.size();
  std::vector<Elem> out(k, 0);
  // If p coincides with a node, the basis row is a unit vector.
  for (std::size_t j = 0; j < k; ++j) {
    if (xs[j] == p) {
      out[j] = 1;
      return out;
    }
  }
  // N = prod_m (p - x_m); all factors nonzero here.
  Elem num = 1;
  for (const Elem x : xs) num = f.mul(num, GF16::add(p, x));
  for (std::size_t j = 0; j < k; ++j) {
    Elem den = GF16::add(p, xs[j]);  // (p - x_j)
    for (std::size_t m = 0; m < k; ++m) {
      if (m != j) den = f.mul(den, GF16::add(xs[j], xs[m]));
    }
    out[j] = f.div(num, den);
  }
  return out;
}

Elem load_symbol(const Bytes& data, std::size_t sym_index) {
  const std::size_t off = 2 * sym_index;
  Elem v = 0;
  if (off < data.size()) v = static_cast<Elem>(data[off]) << 8;
  if (off + 1 < data.size()) v |= data[off + 1];
  return v;
}

void store_symbol(Bytes& data, std::size_t sym_index, Elem v) {
  const std::size_t off = 2 * sym_index;
  if (off < data.size()) data[off] = static_cast<std::uint8_t>(v >> 8);
  if (off + 1 < data.size()) data[off + 1] = static_cast<std::uint8_t>(v);
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k) {
  require(k >= 1 && k <= n && n <= GF16::kOrder,
          "ReedSolomon: need 1 <= k <= n <= 65535");
  const GF16& f = GF16::instance();
  std::vector<Elem> nodes(k);
  for (std::size_t j = 0; j < k; ++j) nodes[j] = static_cast<Elem>(j);
  parity_.reserve(n - k);
  for (std::size_t i = k; i < n; ++i) {
    parity_.push_back(lagrange_row(f, nodes, static_cast<Elem>(i)));
  }
}

std::vector<Bytes> ReedSolomon::encode(const Bytes& data) const {
  const GF16& f = GF16::instance();
  const std::size_t ssize = share_size(data.size());
  const std::size_t chunks = ssize / 2;
  std::vector<Bytes> shares(n_, Bytes(ssize, 0));

  std::vector<Elem> chunk(k_);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t j = 0; j < k_; ++j) {
      chunk[j] = load_symbol(data, c * k_ + j);
      // Systematic part: share j carries data symbol j of each chunk.
      store_symbol(shares[j], c, chunk[j]);
    }
    for (std::size_t r = 0; r < n_ - k_; ++r) {
      const std::vector<Elem>& row = parity_[r];
      Elem acc = 0;
      for (std::size_t j = 0; j < k_; ++j) {
        acc = GF16::add(acc, f.mul(row[j], chunk[j]));
      }
      store_symbol(shares[k_ + r], c, acc);
    }
  }
  return shares;
}

std::optional<Bytes> ReedSolomon::decode(
    const std::vector<std::pair<std::size_t, Bytes>>& shares,
    std::size_t data_size) const {
  const GF16& f = GF16::instance();
  const std::size_t ssize = share_size(data_size);
  const std::size_t chunks = ssize / 2;

  // Select the first k usable shares with distinct in-range indices.
  std::vector<const Bytes*> use(k_, nullptr);
  std::vector<Elem> xs;
  xs.reserve(k_);
  std::vector<bool> taken(n_, false);
  std::vector<std::size_t> order;
  order.reserve(k_);
  for (const auto& [idx, bytes] : shares) {
    if (idx >= n_ || taken[idx] || bytes.size() != ssize) continue;
    taken[idx] = true;
    order.push_back(idx);
    xs.push_back(static_cast<Elem>(idx));
    if (order.size() == k_) break;
  }
  if (order.size() < k_) return std::nullopt;
  // Map share index -> payload pointer in selection order.
  std::vector<const Bytes*> payload(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    for (const auto& [idx, bytes] : shares) {
      if (idx == order[j] && bytes.size() == ssize) {
        payload[j] = &bytes;
        break;
      }
    }
  }

  // Interpolation rows for the k systematic target points.
  std::vector<std::vector<Elem>> rows(k_);
  for (std::size_t p = 0; p < k_; ++p) {
    rows[p] = lagrange_row(f, xs, static_cast<Elem>(p));
  }

  Bytes out(data_size, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t p = 0; p < k_; ++p) {
      const std::size_t sym = c * k_ + p;
      if (2 * sym >= data_size) break;
      Elem acc = 0;
      for (std::size_t j = 0; j < k_; ++j) {
        acc = GF16::add(acc, f.mul(rows[p][j], load_symbol(*payload[j], c)));
      }
      store_symbol(out, sym, acc);
    }
  }
  return out;
}

}  // namespace coca::codec
