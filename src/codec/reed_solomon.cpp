#include "codec/reed_solomon.h"

#include <algorithm>
#include <cstring>

#include "obs/obs.h"
#include "util/kernel_gate.h"

namespace coca::codec {

namespace {

using Elem = GF16::Elem;

// Evaluates all k Lagrange basis polynomials through the distinct points
// `xs` at the point `p`: out[j] = L_j(p).
std::vector<Elem> lagrange_row(const GF16& f, const std::vector<Elem>& xs,
                               Elem p) {
  const std::size_t k = xs.size();
  std::vector<Elem> out(k, 0);
  // If p coincides with a node, the basis row is a unit vector.
  for (std::size_t j = 0; j < k; ++j) {
    if (xs[j] == p) {
      out[j] = 1;
      return out;
    }
  }
  // N = prod_m (p - x_m); all factors nonzero here.
  Elem num = 1;
  for (const Elem x : xs) num = f.mul(num, GF16::add(p, x));
  for (std::size_t j = 0; j < k; ++j) {
    Elem den = GF16::add(p, xs[j]);  // (p - x_j)
    for (std::size_t m = 0; m < k; ++m) {
      if (m != j) den = f.mul(den, GF16::add(xs[j], xs[m]));
    }
    out[j] = f.div(num, den);
  }
  return out;
}

Elem load_symbol(const Bytes& data, std::size_t sym_index) {
  const std::size_t off = 2 * sym_index;
  Elem v = 0;
  if (off < data.size()) v = static_cast<Elem>(data[off]) << 8;
  if (off + 1 < data.size()) v |= data[off + 1];
  return v;
}

void store_symbol(Bytes& data, std::size_t sym_index, Elem v) {
  const std::size_t off = 2 * sym_index;
  if (off < data.size()) data[off] = static_cast<std::uint8_t>(v >> 8);
  if (off + 1 < data.size()) data[off + 1] = static_cast<std::uint8_t>(v);
}

std::size_t share_size_of(std::size_t k, std::size_t data_size) {
  return 2 * std::max<std::size_t>(1, ceil_div(data_size, 2 * k));
}

/// Selects the first k usable shares (distinct in-range indices, exact
/// share size); returns their evaluation points and payload pointers in
/// selection order, or false when fewer than k qualify. Shared by both
/// decoders so they agree on selection down to tie-breaking.
bool select_shares(std::size_t n, std::size_t k, std::size_t ssize,
                   const std::vector<std::pair<std::size_t, Bytes>>& shares,
                   std::vector<Elem>* xs,
                   std::vector<const Bytes*>* payload) {
  xs->clear();
  xs->reserve(k);
  payload->assign(k, nullptr);
  std::vector<bool> taken(n, false);
  std::size_t got = 0;
  for (const auto& [idx, bytes] : shares) {
    if (idx >= n || taken[idx] || bytes.size() != ssize) continue;
    taken[idx] = true;
    xs->push_back(static_cast<Elem>(idx));
    (*payload)[got++] = &bytes;
    if (got == k) return true;
  }
  return false;
}

// Below this share size the MulBy table build (64 field muls + 512 XORs
// per coefficient) costs more than it saves; use the scalar reference path.
constexpr std::size_t kWideThresholdBytes = 512;

// De-interleaves the payload into the k systematic shares: share j holds
// data symbols j, k+j, 2k+j, ... (big-endian). Symbols fully inside the
// payload copy branch-free; the zero-padded tail goes through the
// bounds-checked loaders. `shares` must hold >= k zero-filled buffers of
// `ssize` bytes.
void deinterleave_systematic(const Bytes& data, std::size_t k,
                             std::size_t ssize, std::vector<Bytes>* shares) {
  const std::size_t chunks = ssize / 2;
  for (std::size_t j = 0; j < k; ++j) {
    Bytes& share = (*shares)[j];
    std::size_t c = 0;
    for (; c < chunks; ++c) {
      const std::size_t off = 2 * (c * k + j);
      if (off + 1 >= data.size()) break;
      share[2 * c] = data[off];
      share[2 * c + 1] = data[off + 1];
    }
    for (; c < chunks; ++c) {
      store_symbol(share, c, load_symbol(data, c * k + j));
    }
  }
}

}  // namespace

namespace ref_ {

std::vector<Bytes> encode(std::size_t n, std::size_t k, const Bytes& data) {
  const GF16& f = GF16::instance();
  const std::size_t ssize = share_size_of(k, data.size());
  const std::size_t chunks = ssize / 2;
  std::vector<Elem> nodes(k);
  for (std::size_t j = 0; j < k; ++j) nodes[j] = static_cast<Elem>(j);
  std::vector<std::vector<Elem>> parity;
  parity.reserve(n - k);
  for (std::size_t i = k; i < n; ++i) {
    parity.push_back(lagrange_row(f, nodes, static_cast<Elem>(i)));
  }
  std::vector<Bytes> shares(n, Bytes(ssize, 0));

  std::vector<Elem> chunk(k);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t j = 0; j < k; ++j) {
      chunk[j] = load_symbol(data, c * k + j);
      // Systematic part: share j carries data symbol j of each chunk.
      store_symbol(shares[j], c, chunk[j]);
    }
    for (std::size_t r = 0; r < n - k; ++r) {
      const std::vector<Elem>& row = parity[r];
      Elem acc = 0;
      for (std::size_t j = 0; j < k; ++j) {
        acc = GF16::add(acc, f.mul(row[j], chunk[j]));
      }
      store_symbol(shares[k + r], c, acc);
    }
  }
  return shares;
}

std::optional<Bytes> decode(
    std::size_t n, std::size_t k,
    const std::vector<std::pair<std::size_t, Bytes>>& shares,
    std::size_t data_size) {
  const GF16& f = GF16::instance();
  const std::size_t ssize = share_size_of(k, data_size);
  const std::size_t chunks = ssize / 2;

  std::vector<Elem> xs;
  std::vector<const Bytes*> payload;
  if (!select_shares(n, k, ssize, shares, &xs, &payload)) return std::nullopt;

  // Interpolation rows for the k systematic target points.
  std::vector<std::vector<Elem>> rows(k);
  for (std::size_t p = 0; p < k; ++p) {
    rows[p] = lagrange_row(f, xs, static_cast<Elem>(p));
  }

  Bytes out(data_size, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t p = 0; p < k; ++p) {
      const std::size_t sym = c * k + p;
      if (2 * sym >= data_size) break;
      Elem acc = 0;
      for (std::size_t j = 0; j < k; ++j) {
        acc = GF16::add(acc, f.mul(rows[p][j], load_symbol(*payload[j], c)));
      }
      store_symbol(out, sym, acc);
    }
  }
  return out;
}

}  // namespace ref_

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k) {
  require(k >= 1 && k <= n && n <= GF16::kOrder,
          "ReedSolomon: need 1 <= k <= n <= 65535");
  const GF16& f = GF16::instance();
  std::vector<Elem> nodes(k);
  for (std::size_t j = 0; j < k; ++j) nodes[j] = static_cast<Elem>(j);
  parity_.reserve(n - k);
  for (std::size_t i = k; i < n; ++i) {
    parity_.push_back(lagrange_row(f, nodes, static_cast<Elem>(i)));
  }
}

std::vector<Bytes> ReedSolomon::encode(const Bytes& data) const {
  // Co-scheduler seam: a thread gate may park this instance and run the
  // encode through encode_batch together with its siblings (bit-identical
  // output). Checked before the obs span so inline spans only cover work
  // actually done inline.
  if (KernelGate* g = thread_kernel_gate(); g != nullptr) {
    std::vector<Bytes> shares;
    if (g->rs_encode(n_, k_, data, &shares)) return shares;
  }
  COCA_OBS_SPAN("rs.encode", "kernel");
  const std::size_t ssize = share_size(data.size());
  if (ssize < kWideThresholdBytes) return ref_::encode(n_, k_, data);

  const GF16& f = GF16::instance();
  std::vector<Bytes> shares(n_, Bytes(ssize, 0));
  deinterleave_systematic(data, k_, ssize, &shares);

  // Parity rows as whole-buffer kernel calls: row r = sum_j coef * share_j
  // -- one MulBy table build per coefficient, then a contiguous streaming
  // mul/axpy over the full share. Share-major order keeps both operands
  // resident instead of striding through every share per chunk.
  for (std::size_t r = 0; r + k_ < n_; ++r) {
    Bytes& out = shares[k_ + r];
    bool first = true;
    for (std::size_t j = 0; j < k_; ++j) {
      const Elem coef = parity_[r][j];
      if (coef == 0) continue;  // contributes nothing; `out` is zero-filled
      const MulBy mb(f, coef);
      if (first) {
        mb.mul_be(out.data(), shares[j].data(), ssize);
        first = false;
      } else {
        mb.axpy_be(out.data(), shares[j].data(), ssize);
      }
    }
  }
  return shares;
}

std::vector<std::vector<Bytes>> ReedSolomon::encode_batch(
    std::span<const Bytes* const> batch) const {
  COCA_OBS_SPAN("rs.encode", "kernel");
  const GF16& f = GF16::instance();
  std::vector<std::vector<Bytes>> out(batch.size());
  std::vector<std::size_t> wide;  // payloads on the table-driven path
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Bytes& data = *batch[i];
    const std::size_t ssize = share_size(data.size());
    if (ssize < kWideThresholdBytes) {
      out[i] = ref_::encode(n_, k_, data);
      continue;
    }
    out[i].assign(n_, Bytes(ssize, 0));
    deinterleave_systematic(data, k_, ssize, &out[i]);
    wide.push_back(i);
  }

  // All parity work of the whole batch as one axpy job list. Parity shares
  // start zero-filled, so even the first nonzero coefficient of a row is
  // an accumulate (dst ^= c*src over zeros == dst = c*src byte for byte);
  // axpy_be_batch then builds one MulBy table per distinct coefficient
  // across every (row, payload) pair -- dedup that the per-(r, j) loop
  // structure could not reach. Jobs touch disjoint dst buffers and XOR
  // accumulation is commutative, so any execution order (axpy_be_batch
  // groups by coefficient) leaves every share bit-identical to encode().
  std::vector<AxpyJob> jobs;
  jobs.reserve(wide.size() * (n_ - k_) * k_);
  for (const std::size_t w : wide) {
    std::vector<Bytes>& shares = out[w];
    const std::size_t ssize = shares[0].size();
    for (std::size_t r = 0; r + k_ < n_; ++r) {
      for (std::size_t j = 0; j < k_; ++j) {
        const Elem coef = parity_[r][j];
        if (coef == 0) continue;
        jobs.push_back(
            {shares[k_ + r].data(), shares[j].data(), ssize, coef});
      }
    }
  }
  axpy_be_batch(f, jobs);
  return out;
}

std::vector<std::vector<Bytes>> ReedSolomon::encode_batch(
    std::span<const Bytes> batch) const {
  std::vector<const Bytes*> ptrs;
  ptrs.reserve(batch.size());
  for (const Bytes& b : batch) ptrs.push_back(&b);
  return encode_batch(std::span<const Bytes* const>(ptrs));
}

std::optional<Bytes> ReedSolomon::decode(
    const std::vector<std::pair<std::size_t, Bytes>>& shares,
    std::size_t data_size) const {
  COCA_OBS_SPAN("rs.decode", "kernel");
  const std::size_t ssize = share_size(data_size);
  if (ssize < kWideThresholdBytes) {
    return ref_::decode(n_, k_, shares, data_size);
  }

  const GF16& f = GF16::instance();
  const std::size_t chunks = ssize / 2;

  std::vector<Elem> xs;
  std::vector<const Bytes*> payload;
  if (!select_shares(n_, k_, ssize, shares, &xs, &payload)) {
    return std::nullopt;
  }

  Bytes out(data_size, 0);
  Bytes col(ssize, 0);
  for (std::size_t p = 0; p < k_; ++p) {
    // Column p (data symbols p, k+p, 2k+p, ...) as one linear combination
    // of the selected shares, streamed into `col` with the MulBy kernels.
    const std::vector<Elem> row = lagrange_row(f, xs, static_cast<Elem>(p));
    bool first = true;
    for (std::size_t j = 0; j < k_; ++j) {
      const Elem coef = row[j];
      if (coef == 0) continue;
      if (coef == 1 && first) {
        // Unit row (the target point is among the selected shares): the
        // column is that share verbatim. This is the whole inner loop of
        // the common all-systematic-shares decode.
        std::memcpy(col.data(), payload[j]->data(), ssize);
        first = false;
        continue;
      }
      const MulBy mb(f, coef);
      if (first) {
        mb.mul_be(col.data(), payload[j]->data(), ssize);
        first = false;
      } else {
        mb.axpy_be(col.data(), payload[j]->data(), ssize);
      }
    }
    if (first) std::fill(col.begin(), col.end(), std::uint8_t{0});

    // Interleave the column back at stride k; bounds-checked at the tail.
    std::size_t c = 0;
    for (; c < chunks; ++c) {
      const std::size_t off = 2 * (c * k_ + p);
      if (off + 1 >= data_size) break;
      out[off] = col[2 * c];
      out[off + 1] = col[2 * c + 1];
    }
    for (; c < chunks; ++c) {
      const std::size_t sym = c * k_ + p;
      if (2 * sym >= data_size) break;
      store_symbol(out, sym, load_symbol(col, c));
    }
  }
  return out;
}

}  // namespace coca::codec
