// GF(2^16) arithmetic via log/antilog tables.
//
// Field for the Reed-Solomon codes of Section 7: symbols are elements of
// GF(2^a) with n <= 2^a - 1; a = 16 supports up to 65535 parties. Tables are
// built once at first use from a verified primitive polynomial (the builder
// checks that x generates the full multiplicative group, so a wrong constant
// cannot silently produce a non-field).
#pragma once

#include <cstdint>

#include "util/common.h"

namespace coca::codec {

class GF16 {
 public:
  using Elem = std::uint16_t;

  /// The process-wide field instance (tables built on first call).
  static const GF16& instance();

  /// Addition == subtraction == XOR in characteristic 2.
  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }

  Elem mul(Elem a, Elem b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<std::size_t>(log_[a]) + log_[b]];
  }

  Elem inv(Elem a) const {
    require(a != 0, "GF16::inv: zero has no inverse");
    return exp_[kOrder - log_[a]];
  }

  Elem div(Elem a, Elem b) const { return mul(a, inv(b)); }

  /// alpha^i for i in [0, 2*kOrder).
  Elem exp(std::size_t i) const { return exp_[i % kOrder]; }
  std::uint16_t log(Elem a) const {
    require(a != 0, "GF16::log: log of zero");
    return log_[a];
  }

  /// Multiplicative group order: 2^16 - 1.
  static constexpr std::size_t kOrder = 65535;

 private:
  GF16();

  // exp_ doubled so mul() needs no modular reduction of the exponent sum.
  Elem exp_[2 * kOrder] = {};
  std::uint16_t log_[kOrder + 1] = {};
};

}  // namespace coca::codec
