// GF(2^16) arithmetic via log/antilog tables.
//
// Field for the Reed-Solomon codes of Section 7: symbols are elements of
// GF(2^a) with n <= 2^a - 1; a = 16 supports up to 65535 parties. Tables are
// built once at first use from a verified primitive polynomial (the builder
// checks that x generates the full multiplicative group, so a wrong constant
// cannot silently produce a non-field).
//
// `MulBy` is the bulk-multiplication kernel: multiplication by a fixed
// constant c is GF(2)-linear in the 16 input bits, so c*x decomposes into
// XORs of per-nibble partial products. The constructor builds the four
// packed nibble tables (64 field muls) and folds them into two 256-entry
// byte tables (XORs only); `mul_be`/`axpy_be` then stream over big-endian
// symbol buffers at two L1 lookups per symbol with 64-bit-wide XOR/stores --
// the inner loop of Reed-Solomon encode/decode.
#pragma once

#include <cstdint>
#include <span>

#include "util/common.h"

namespace coca::codec {

class GF16 {
 public:
  using Elem = std::uint16_t;

  /// The process-wide field instance (tables built on first call).
  static const GF16& instance();

  /// Addition == subtraction == XOR in characteristic 2.
  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }

  Elem mul(Elem a, Elem b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<std::size_t>(log_[a]) + log_[b]];
  }

  Elem inv(Elem a) const {
    require(a != 0, "GF16::inv: zero has no inverse");
    return exp_[kOrder - log_[a]];
  }

  Elem div(Elem a, Elem b) const { return mul(a, inv(b)); }

  /// alpha^i for i in [0, 2*kOrder).
  Elem exp(std::size_t i) const { return exp_[i % kOrder]; }
  std::uint16_t log(Elem a) const {
    require(a != 0, "GF16::log: log of zero");
    return log_[a];
  }

  /// Multiplicative group order: 2^16 - 1.
  static constexpr std::size_t kOrder = 65535;

 private:
  GF16();

  // exp_ doubled so mul() needs no modular reduction of the exponent sum.
  Elem exp_[2 * kOrder] = {};
  std::uint16_t log_[kOrder + 1] = {};
};

/// Multiplication by a fixed field constant, for bulk symbol streams.
///
/// Construction costs 64 field muls (the packed nibble tables) plus 512
/// XORs (folding into byte tables); amortize it over at least a few hundred
/// symbols -- Reed-Solomon keeps a scalar path for small buffers.
class MulBy {
 public:
  using Elem = GF16::Elem;

  MulBy(const GF16& f, Elem c);

  /// c * x, two L1 lookups.
  Elem operator()(Elem x) const {
    return static_cast<Elem>(lo_[x & 0xFF] ^ hi_[x >> 8]);
  }

  /// dst = c * src over `bytes` bytes of big-endian 16-bit symbols
  /// (`bytes` must be even; buffers must not overlap).
  void mul_be(std::uint8_t* dst, const std::uint8_t* src,
              std::size_t bytes) const;

  /// dst ^= c * src (same layout contract): the GF(2^16) axpy.
  void axpy_be(std::uint8_t* dst, const std::uint8_t* src,
               std::size_t bytes) const;

 private:
  Elem lo_[256];  // c * x for x in 0..255 (low source byte)
  Elem hi_[256];  // c * (x << 8)         (high source byte)
};

/// One dst ^= c * src accumulate over big-endian 16-bit symbols: the unit
/// of cross-instance axpy batching. `bytes` must be even; dst and src must
/// not overlap.
struct AxpyJob {
  std::uint8_t* dst = nullptr;
  const std::uint8_t* src = nullptr;
  std::size_t bytes = 0;
  GF16::Elem c = 0;
};

/// Runs every job, bit-identical to calling MulBy(f, job.c).axpy_be(...)
/// per job, but with one MulBy table build per distinct nonzero coefficient
/// across the whole batch -- the amortization many small per-instance
/// buffers cannot get on their own. Jobs with c == 0 or bytes == 0 are
/// no-ops (XOR with zero), matching the per-job path.
void axpy_be_batch(const GF16& f, std::span<const AxpyJob> jobs);

}  // namespace coca::codec
