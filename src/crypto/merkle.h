// Merkle-tree accumulator (Section 7 of the paper).
//
// Compresses a list of Reed-Solomon codewords {s_1..s_n} into a kappa-bit
// root z and provides O(kappa log n) membership witnesses: MT.BUILD and
// MT.VERIFY in the paper's notation. Leaves and internal nodes are
// domain-separated so a leaf cannot masquerade as an internal node.
#pragma once

#include <vector>

#include "crypto/sha256.h"
#include "util/common.h"

namespace coca::crypto {

/// Sibling hashes from the leaf's level up to (excluding) the root.
using MerkleWitness = std::vector<Digest>;

class MerkleTree {
 public:
  /// MT.BUILD: builds the tree over `leaves` (padded to a power of two with
  /// a fixed empty-leaf digest). Requires at least one leaf.
  static MerkleTree build(const std::vector<Bytes>& leaves);

  /// MT.BUILD over borrowed byte views: identical tree, but callers hashing
  /// slices of a larger buffer (e.g. Reed-Solomon share views) need not
  /// materialize per-leaf Bytes copies. The whole build runs through one
  /// reused hash context. (Distinct name: a `build({})` call must stay
  /// unambiguous.)
  static MerkleTree build_views(
      std::span<const std::span<const std::uint8_t>> leaves);

  /// One instance's leaf list, as handed to build_views.
  using LeafList = std::span<const std::span<const std::uint8_t>>;

  /// Cross-instance MT.BUILD: one tree per leaf list, each bit-identical to
  /// a build_views call on that list alone. The whole batch shares a single
  /// hash context and a single obs span, so many small per-instance builds
  /// amortize setup the way one large build does.
  static std::vector<MerkleTree> build_views_batch(
      std::span<const LeafList> batch);

  /// Root hash z: the kappa-bit encoding of the leaf multiset.
  const Digest& root() const { return nodes_[1]; }

  std::size_t leaf_count() const { return leaf_count_; }

  /// Witness w_i for the i-th leaf (0-indexed).
  MerkleWitness witness(std::size_t index) const;

  /// MT.VERIFY(z, i, s_i, w_i): true iff `witness` proves that `leaf` is the
  /// `index`-th of `leaf_count` leaves under root `root`.
  /// Robust against malformed witnesses (wrong length, bad index).
  static bool verify(const Digest& root, std::size_t leaf_count,
                     std::size_t index, const Bytes& leaf,
                     const MerkleWitness& witness);

  /// Depth of (= witness size for) a tree with `leaf_count` leaves.
  static std::size_t depth(std::size_t leaf_count);

  /// Domain-separated leaf hash: H(0x00 || data).
  static Digest leaf_hash(std::span<const std::uint8_t> data);
  static Digest leaf_hash(const Bytes& data) {
    return leaf_hash(std::span<const std::uint8_t>(data.data(), data.size()));
  }

 private:
  MerkleTree() = default;

  /// Shared body of build_views / build_views_batch: one tree through the
  /// caller's (reused) hash context, no obs span of its own.
  static MerkleTree build_one(Sha256& ctx, LeafList leaves);

  std::size_t leaf_count_ = 0;  // real leaves (before padding)
  std::size_t width_ = 0;       // padded to power of two
  // Heap layout: nodes_[1] is the root, children of k are 2k and 2k+1,
  // leaves occupy [width_, 2*width_).
  std::vector<Digest> nodes_;
};

}  // namespace coca::crypto
