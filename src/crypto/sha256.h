// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Instantiates the paper's collision-resistant hash H_kappa with kappa = 256.
// Used for Merkle-tree accumulators (Section 7) and the kappa-bit value
// encodings the extension protocol Pi_lBA+ agrees on.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/common.h"

namespace coca::crypto {

/// kappa-bit hash output, kappa = 256.
using Digest = std::array<std::uint8_t, 32>;

inline constexpr std::size_t kKappaBits = 256;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(const Bytes& data) {
    update(std::span<const std::uint8_t>(data.data(), data.size()));
  }
  /// Finalizes and returns the digest; the context must be reset before reuse.
  Digest finish();

 private:
  /// Compresses `nblocks` consecutive 64-byte blocks, dispatching to the
  /// SHA-NI backend when the CPU has it (same FIPS 180-4 output either way).
  void compress_blocks(const std::uint8_t* blocks, std::size_t nblocks);
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8] = {};
  std::uint64_t total_len_ = 0;
  std::uint8_t buf_[64] = {};
  std::size_t buf_len_ = 0;
};

/// One-shot hash of a byte span.
Digest sha256(std::span<const std::uint8_t> data);
inline Digest sha256(const Bytes& data) {
  return sha256(std::span<const std::uint8_t>(data.data(), data.size()));
}

/// Hex rendering for diagnostics and tests.
std::string to_hex(const Digest& d);

/// Digest as Bytes (for wire encoding).
inline Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

}  // namespace coca::crypto
