// Internal: hardware-accelerated SHA-256 compression backend.
//
// The Sha256 class dispatches its block compression to this unit when the
// CPU provides the x86 SHA extensions (SHA-NI); the portable scalar
// implementation in sha256.cpp remains the fallback and the reference. Both
// compute the identical FIPS 180-4 function -- the NIST vector tests pin
// the output regardless of which backend ran.
#pragma once

#include <cstddef>
#include <cstdint>

namespace coca::crypto::detail {

/// True when the SHA-NI path is compiled in and the CPU supports it.
bool sha_ni_available();

/// Compresses `nblocks` consecutive 64-byte message blocks into `state`
/// (eight working words, host order). Precondition: sha_ni_available().
void compress_ni(std::uint32_t state[8], const std::uint8_t* blocks,
                 std::size_t nblocks);

}  // namespace coca::crypto::detail
