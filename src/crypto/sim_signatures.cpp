#include "crypto/sim_signatures.h"

#include "util/wire.h"

namespace coca::crypto {

namespace {
constexpr std::uint8_t kSigTag = 0x53;  // domain separation: 'S'
}  // namespace

Signature Signer::sign(std::span<const std::uint8_t> message) const {
  Sha256 ctx;
  ctx.update(std::span<const std::uint8_t>(&kSigTag, 1));
  ctx.update(std::span<const std::uint8_t>(secret_.data(), secret_.size()));
  ctx.update(message);
  return ctx.finish();
}

SimulatedPki::SimulatedPki(int n, std::uint64_t seed) {
  require(n >= 1, "SimulatedPki: need at least one party");
  secrets_.reserve(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    Writer w;
    w.u64(seed);
    w.u32(static_cast<std::uint32_t>(id));
    secrets_.push_back(sha256(w.peek()));
  }
}

Signer SimulatedPki::signer(int id) const {
  require(id >= 0 && id < n(), "SimulatedPki::signer: bad id");
  return Signer(id, secrets_[static_cast<std::size_t>(id)]);
}

bool SimulatedPki::verify(int id, std::span<const std::uint8_t> message,
                          const Signature& signature) const {
  if (id < 0 || id >= n()) return false;
  return signer(id).sign(message) == signature;
}

}  // namespace coca::crypto
