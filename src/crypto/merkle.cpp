#include "crypto/merkle.h"

namespace coca::crypto {

namespace {

constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;
constexpr std::uint8_t kEmptyTag = 0x02;

Digest node_hash(const Digest& left, const Digest& right) {
  Sha256 ctx;
  ctx.update(std::span<const std::uint8_t>(&kNodeTag, 1));
  ctx.update(std::span<const std::uint8_t>(left.data(), left.size()));
  ctx.update(std::span<const std::uint8_t>(right.data(), right.size()));
  return ctx.finish();
}

const Digest& empty_leaf_digest() {
  static const Digest d = sha256(std::span<const std::uint8_t>(&kEmptyTag, 1));
  return d;
}

}  // namespace

Digest MerkleTree::leaf_hash(const Bytes& data) {
  Sha256 ctx;
  ctx.update(std::span<const std::uint8_t>(&kLeafTag, 1));
  ctx.update(data);
  return ctx.finish();
}

std::size_t MerkleTree::depth(std::size_t leaf_count) {
  require(leaf_count >= 1, "MerkleTree::depth: need at least one leaf");
  return ceil_log2(leaf_count);
}

MerkleTree MerkleTree::build(const std::vector<Bytes>& leaves) {
  require(!leaves.empty(), "MerkleTree::build: need at least one leaf");
  MerkleTree t;
  t.leaf_count_ = leaves.size();
  t.width_ = std::size_t{1} << depth(leaves.size());
  t.nodes_.assign(2 * t.width_, Digest{});
  for (std::size_t i = 0; i < t.width_; ++i) {
    t.nodes_[t.width_ + i] =
        i < leaves.size() ? leaf_hash(leaves[i]) : empty_leaf_digest();
  }
  for (std::size_t i = t.width_; i-- > 1;) {
    t.nodes_[i] = node_hash(t.nodes_[2 * i], t.nodes_[2 * i + 1]);
  }
  return t;
}

MerkleWitness MerkleTree::witness(std::size_t index) const {
  require(index < leaf_count_, "MerkleTree::witness: index out of range");
  MerkleWitness w;
  w.reserve(depth(leaf_count_));
  for (std::size_t node = width_ + index; node > 1; node /= 2) {
    w.push_back(nodes_[node ^ 1]);
  }
  return w;
}

bool MerkleTree::verify(const Digest& root, std::size_t leaf_count,
                        std::size_t index, const Bytes& leaf,
                        const MerkleWitness& witness) {
  if (leaf_count == 0 || index >= leaf_count) return false;
  if (witness.size() != depth(leaf_count)) return false;
  Digest h = leaf_hash(leaf);
  std::size_t pos = index;
  for (const Digest& sibling : witness) {
    h = (pos & 1U) ? node_hash(sibling, h) : node_hash(h, sibling);
    pos >>= 1;
  }
  return h == root;
}

}  // namespace coca::crypto
