#include "crypto/merkle.h"

#include "obs/obs.h"
#include "util/kernel_gate.h"

namespace coca::crypto {

namespace {

constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;
constexpr std::uint8_t kEmptyTag = 0x02;

Digest node_hash(const Digest& left, const Digest& right) {
  Sha256 ctx;
  ctx.update(std::span<const std::uint8_t>(&kNodeTag, 1));
  ctx.update(std::span<const std::uint8_t>(left.data(), left.size()));
  ctx.update(std::span<const std::uint8_t>(right.data(), right.size()));
  return ctx.finish();
}

const Digest& empty_leaf_digest() {
  static const Digest d = sha256(std::span<const std::uint8_t>(&kEmptyTag, 1));
  return d;
}

}  // namespace

Digest MerkleTree::leaf_hash(std::span<const std::uint8_t> data) {
  Sha256 ctx;
  ctx.update(std::span<const std::uint8_t>(&kLeafTag, 1));
  ctx.update(data);
  return ctx.finish();
}

std::size_t MerkleTree::depth(std::size_t leaf_count) {
  require(leaf_count >= 1, "MerkleTree::depth: need at least one leaf");
  return ceil_log2(leaf_count);
}

MerkleTree MerkleTree::build_one(Sha256& ctx, LeafList leaves) {
  require(!leaves.empty(), "MerkleTree::build: need at least one leaf");
  MerkleTree t;
  t.leaf_count_ = leaves.size();
  t.width_ = std::size_t{1} << depth(leaves.size());
  t.nodes_.assign(2 * t.width_, Digest{});
  // One hash context for the whole build: reset between leaves instead of
  // constructing a fresh context (and padding buffer) per leaf.
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    ctx.reset();
    ctx.update(std::span<const std::uint8_t>(&kLeafTag, 1));
    ctx.update(leaves[i]);
    t.nodes_[t.width_ + i] = ctx.finish();
  }
  for (std::size_t i = leaves.size(); i < t.width_; ++i) {
    t.nodes_[t.width_ + i] = empty_leaf_digest();
  }
  for (std::size_t i = t.width_; i-- > 1;) {
    t.nodes_[i] = node_hash(t.nodes_[2 * i], t.nodes_[2 * i + 1]);
  }
  return t;
}

MerkleTree MerkleTree::build_views(
    std::span<const std::span<const std::uint8_t>> leaves) {
  // Co-scheduler seam: see util/kernel_gate.h. The gate may park this
  // instance and run the build via build_views_batch (bit-identical).
  if (KernelGate* g = thread_kernel_gate(); g != nullptr) {
    MerkleTree t;
    if (g->merkle_build(leaves, &t)) return t;
  }
  COCA_OBS_SPAN("merkle.build", "kernel");
  Sha256 ctx;
  return build_one(ctx, leaves);
}

std::vector<MerkleTree> MerkleTree::build_views_batch(
    std::span<const LeafList> batch) {
  COCA_OBS_SPAN("merkle.build", "kernel");
  std::vector<MerkleTree> trees;
  trees.reserve(batch.size());
  Sha256 ctx;
  for (const LeafList& leaves : batch) {
    trees.push_back(build_one(ctx, leaves));
  }
  return trees;
}

MerkleTree MerkleTree::build(const std::vector<Bytes>& leaves) {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(leaves.size());
  for (const Bytes& leaf : leaves) views.emplace_back(leaf.data(), leaf.size());
  return build_views(std::span<const std::span<const std::uint8_t>>(views));
}

MerkleWitness MerkleTree::witness(std::size_t index) const {
  require(index < leaf_count_, "MerkleTree::witness: index out of range");
  MerkleWitness w;
  w.reserve(depth(leaf_count_));
  for (std::size_t node = width_ + index; node > 1; node /= 2) {
    w.push_back(nodes_[node ^ 1]);
  }
  return w;
}

bool MerkleTree::verify(const Digest& root, std::size_t leaf_count,
                        std::size_t index, const Bytes& leaf,
                        const MerkleWitness& witness) {
  COCA_OBS_SPAN("merkle.verify", "kernel");
  if (leaf_count == 0 || index >= leaf_count) return false;
  if (witness.size() != depth(leaf_count)) return false;
  Digest h = leaf_hash(leaf);
  std::size_t pos = index;
  for (const Digest& sibling : witness) {
    h = (pos & 1U) ? node_hash(sibling, h) : node_hash(h, sibling);
    pos >>= 1;
  }
  return h == root;
}

}  // namespace coca::crypto
