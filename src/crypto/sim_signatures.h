// Simulated digital signatures (trusted-setup stand-in).
//
// The paper's closing open problems include "the synchronous model with
// t < n/2 corruptions assuming cryptographic setup". The setup this enables
// is a PKI; for a simulator, unforgeability only needs to hold against the
// in-simulation adversaries (scripted strategies manipulate observed bytes,
// protocol-running corruptions hold only their own signer), so a keyed-hash
// construction suffices: sig = H(tag || secret_i || message), with
// verification by recomputation inside the PKI object that owns all
// secrets. This models an idealized EUF-CMA scheme with zero-cost
// verification; byte sizes (32-byte signatures) match a real scheme's
// order of magnitude so communication metering stays meaningful.
#pragma once

#include "crypto/sha256.h"

namespace coca::crypto {

using Signature = std::array<std::uint8_t, 32>;

/// A party's signing capability. Handed out at setup time; holding a
/// Signer for id i is what "being party i" means cryptographically.
class Signer {
 public:
  int id() const { return id_; }
  Signature sign(std::span<const std::uint8_t> message) const;

 private:
  friend class SimulatedPki;
  Signer(int id, const Digest& secret) : id_(id), secret_(secret) {}
  int id_;
  Digest secret_;
};

/// The trusted setup: derives one secret per party from a seed and
/// verifies signatures by recomputation.
class SimulatedPki {
 public:
  SimulatedPki(int n, std::uint64_t seed);

  int n() const { return narrow<int>(secrets_.size()); }

  /// The signer for party `id` (call once per party during setup).
  Signer signer(int id) const;

  bool verify(int id, std::span<const std::uint8_t> message,
              const Signature& signature) const;

 private:
  std::vector<Digest> secrets_;
};

}  // namespace coca::crypto
