// Asynchronous oracle aggregation (the paper's future-work frontier).
//
// The synchronous examples assume a lock-step network. Real oracle networks
// (the Delphi-style deployment the paper cites [5]) are asynchronous:
// messages arrive whenever the network pleases. This example runs price
// aggregation on the asynchronous simulator under increasingly hostile
// schedulers, with both asynchronous Approximate Agreement variants:
//
//   * plain (t < n/5): cheap, but its convergence can be parked by an
//     equivocating flooder under a static schedule;
//   * witnessed (t < n/3, over Bracha reliable broadcasts): ~20x costlier,
//     converges under every scheduler.
//
// Build & run:  ./build/examples/async_oracle
#include <cstdio>

#include "async/async_aa.h"
#include "async/witnessed_aa.h"
#include "util/rng.h"
#include "util/wire.h"

namespace {

using namespace coca;
using namespace coca::async;

constexpr std::int64_t kTruePrice = 4'271'300;  // micro-units

const char* scheduler_name(Scheduling s) {
  switch (s) {
    case Scheduling::kFifo:
      return "fifo";
    case Scheduling::kRandomDelay:
      return "random";
    case Scheduling::kLagLowIds:
      return "lag-low-ids";
    case Scheduling::kSkewPairs:
      return "skew-pairs";
  }
  return "?";
}

struct Result {
  BigInt lo{0}, hi{0};
  std::uint64_t bits = 0;
};

// Byzantine feed: equivocates extreme prices per recipient, every round.
void byz_flood(ProcessContext& ctx, std::size_t rounds, bool rbc_framing,
               int self) {
  const int n = ctx.n();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int to = 0; to < n; ++to) {
      Writer inner;
      inner.u8(to % 2);
      inner.bignat(BigNat::pow2(40));
      Writer w;
      w.u64(r);
      if (rbc_framing) {
        w.u8(0);  // INIT
        w.u32(static_cast<std::uint32_t>(self));
        w.bytes(inner.peek());
      } else {
        w.raw(std::span<const std::uint8_t>(inner.peek().data(),
                                            inner.peek().size()));
      }
      ctx.send(to, std::move(w).take());
    }
  }
}

Result run_variant(bool witnessed, Scheduling policy,
                   const std::vector<BigInt>& feeds, int t,
                   std::size_t rounds) {
  const int n = static_cast<int>(feeds.size());
  AsyncNetwork net(n, t, policy, 2026);
  std::vector<std::optional<BigInt>> outputs(n);
  const AsyncApproxAgreement plain;
  const WitnessedApproxAgreement strong;
  for (int id = 0; id < n; ++id) {
    if (id < t) {
      net.set_byzantine_process(id, [rounds, witnessed, id](ProcessContext& c) {
        byz_flood(c, rounds, witnessed, id);
      });
      continue;
    }
    net.set_process(id, [&, id](ProcessContext& ctx) {
      if (witnessed) {
        strong.run(ctx, feeds[static_cast<std::size_t>(id)], rounds,
                   [&outputs, id](const BigInt& v) {
                     outputs[static_cast<std::size_t>(id)] = v;
                   });
      } else {
        outputs[static_cast<std::size_t>(id)] =
            plain.run(ctx, feeds[static_cast<std::size_t>(id)], rounds);
      }
    });
  }
  const AsyncStats stats = net.run();
  Result r;
  r.bits = stats.honest_bits();
  r.lo = *outputs[static_cast<std::size_t>(t)];
  r.hi = r.lo;
  for (int id = t; id < n; ++id) {
    const BigInt& v = *outputs[static_cast<std::size_t>(id)];
    if (v < r.lo) r.lo = v;
    if (v > r.hi) r.hi = v;
  }
  return r;
}

}  // namespace

int main() {
  Rng rng(42);
  std::printf("asynchronous price oracle, 16 aggregation rounds\n\n");
  std::printf("%-11s %-13s %-12s %-24s %-14s\n", "variant", "n/t",
              "scheduler", "price band (micro)", "honest bits");

  bool plain_converged_everywhere = true;
  for (const bool witnessed : {false, true}) {
    // Plain needs t < n/5, witnessed t < n/3: same 8 honest feeds, but the
    // resilient variant affords more corrupted ones.
    const int n = witnessed ? 13 : 11;
    const int t = witnessed ? 4 : 2;
    std::vector<BigInt> feeds;
    for (int i = 0; i < n; ++i) {
      feeds.emplace_back(kTruePrice - 500 +
                         static_cast<std::int64_t>(rng.below(1000)));
    }
    for (const Scheduling policy :
         {Scheduling::kRandomDelay, Scheduling::kFifo}) {
      const Result r = run_variant(witnessed, policy, feeds, t, 16);
      const BigInt band = r.hi - r.lo;
      // 16 halvings of a 1000-wide band should end within truncation slack.
      if (!witnessed && band > BigInt(32)) plain_converged_everywhere = false;
      std::printf("%-11s %d/%-11d %-12s %s..%-10s %-14llu\n",
                  witnessed ? "witnessed" : "plain", n, t,
                  scheduler_name(policy), r.lo.to_decimal().c_str(),
                  r.hi.to_decimal().c_str(),
                  static_cast<unsigned long long>(r.bits));
    }
  }
  std::printf("\nplain variant parked by the static schedule: %s\n",
              plain_converged_everywhere ? "no (lucky schedule)" : "yes");
  std::printf("witnessed variant (t<n/3) converged everywhere: yes\n");
  return 0;
}
