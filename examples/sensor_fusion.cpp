// Sensor fusion under escalating attacks.
//
// A fleet of 13 altitude sensors (aviation-control style, cf. the paper's
// applications list) must agree on one reading, with t = 4 corrupted units.
// The example runs the same honest fleet against every adversary in the
// battery -- including the split-brain equivocator, the attack that breaks
// naive averaging schemes -- and reports the agreed value and cost each
// time. Convex Agreement guarantees the output never leaves the honest
// envelope, whatever the corrupted units do.
//
// Build & run:  ./build/examples/sensor_fusion
#include <cstdio>

#include "ca/driver.h"
#include "util/rng.h"

int main() {
  using namespace coca;

  const int n = 13;
  const int t = 4;

  // Honest altimeters: 35000 ft +- small measurement noise (tenths of feet).
  Rng rng(2024);
  std::vector<BigInt> readings;
  for (int i = 0; i < n; ++i) {
    readings.emplace_back(
        static_cast<std::int64_t>(349980 + rng.below(45)));
  }

  ca::ConvexAgreement protocol;

  std::printf("altitude fusion: n=%d sensors, t=%d corrupted\n", n, t);
  std::printf("honest envelope: 34998.0 .. 35002.5 ft (tenths)\n\n");
  std::printf("%-14s %-14s %-9s %-12s %s\n", "adversary", "agreed value",
              "rounds", "honest bits", "valid?");

  bool all_ok = true;
  for (const adv::Kind kind : adv::kAllKinds) {
    ca::SimConfig config;
    config.n = n;
    config.t = t;
    config.inputs = readings;
    // Corrupt 4 sensors spread over the id space.
    config.corruptions = {{1, kind}, {4, kind}, {7, kind}, {10, kind}};
    config.extreme_low = BigInt(0);        // "on the ground"
    config.extreme_high = BigInt(990000);  // "in orbit"

    const ca::SimResult result = ca::run_simulation(protocol, config);
    const bool ok =
        result.agreement() && result.convex_validity(config.inputs);
    all_ok = all_ok && ok;

    std::string agreed = "(none)";
    for (const auto& out : result.outputs) {
      if (out) {
        agreed = out->to_decimal();
        break;
      }
    }
    std::printf("%-14s %-14s %-9zu %-12llu %s\n",
                std::string(adv::to_string(kind)).c_str(), agreed.c_str(),
                result.stats.rounds,
                static_cast<unsigned long long>(result.stats.honest_bits()),
                ok ? "yes" : "NO");
  }

  std::printf("\n%s\n", all_ok ? "all attacks contained"
                               : "PROPERTY VIOLATION DETECTED");
  return all_ok ? 0 : 1;
}
