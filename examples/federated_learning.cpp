// Byzantine-robust gradient aggregation.
//
// Ten workers train a shared model; each round they must agree on one
// gradient before applying it (the fault-tolerant distributed learning
// application the paper cites [4, 18, 19, 48]). Three workers are poisoned
// and push huge gradients to blow up training. Coordinate-wise Convex
// Agreement (VectorCA over Pi_Z) pins every coordinate of the agreed
// gradient inside the honest gradients' bounding box, so the poisoning is
// structurally filtered -- no outlier detection heuristics, no thresholds.
//
// Gradients use 6-decimal fixed point; the simulated loss landscape is a
// simple quadratic bowl so convergence is measurable.
//
// Build & run:  ./build/examples/federated_learning
#include <cstdio>

#include "ca/driver.h"
#include "ca/vector_ca.h"
#include "util/fixed_point.h"
#include "util/rng.h"

namespace {

using namespace coca;

constexpr int kDim = 4;
constexpr unsigned kPrecision = 6;
constexpr std::int64_t kScale = 1'000'000;  // 10^kPrecision

// Loss = sum_i (w_i - target_i)^2; honest gradient = 2 (w - target) plus
// per-worker minibatch noise.
const std::int64_t kTarget[kDim] = {1 * kScale, -2 * kScale, 0, 3 * kScale};

std::vector<BigInt> honest_gradient(const std::int64_t* w, Rng& rng) {
  std::vector<BigInt> g;
  for (int i = 0; i < kDim; ++i) {
    const std::int64_t noise =
        static_cast<std::int64_t>(rng.below(2000)) - 1000;  // +-1e-3
    g.emplace_back(2 * (w[i] - kTarget[i]) / 10 + noise);   // lr folded in
  }
  return g;
}

}  // namespace

int main() {
  const int n = 10;
  const int t = 3;

  ca::ConvexAgreement scalar;
  ca::VectorCA aggregate(scalar);

  std::int64_t weights[kDim] = {5 * kScale, 5 * kScale, 5 * kScale,
                                -5 * kScale};
  Rng rng(7);

  std::printf("federated training: n=%d workers, t=%d poisoned, dim=%d\n\n",
              n, t, kDim);
  std::printf("%-6s %-44s %s\n", "step", "weights", "loss");

  bool ok = true;
  for (int step = 0; step < 8; ++step) {
    // Each honest worker computes its gradient; poisoned workers run the
    // protocol with a huge adversarial gradient on every coordinate.
    std::vector<std::vector<BigInt>> gradients;
    for (int w = 0; w < n; ++w) gradients.push_back(honest_gradient(weights, rng));

    net::SyncNetwork net(n, t);
    std::vector<std::optional<std::vector<BigInt>>> outputs(n);
    const std::vector<BigInt> poison(kDim, BigInt(1'000'000 * kScale));
    for (int id = 0; id < n; ++id) {
      if (id >= n - t) {
        net.set_byzantine_protocol(id, [&aggregate, poison](net::PartyContext& ctx) {
          (void)aggregate.run(ctx, poison);
        });
      } else {
        net.set_honest(id, [&, id](net::PartyContext& ctx) {
          outputs[static_cast<std::size_t>(id)] =
              aggregate.run(ctx, gradients[static_cast<std::size_t>(id)]);
        });
      }
    }
    (void)net.run();

    // All honest workers hold the same agreed gradient; verify box validity
    // coordinate-wise and apply it.
    const std::vector<BigInt>& agreed = *outputs[0];
    for (int id = 1; id < n - t; ++id) ok = ok && (*outputs[id] == agreed);
    for (int i = 0; i < kDim; ++i) {
      BigInt lo = gradients[0][static_cast<std::size_t>(i)];
      BigInt hi = lo;
      for (int w = 1; w < n - t; ++w) {
        const BigInt& g = gradients[static_cast<std::size_t>(w)]
                                   [static_cast<std::size_t>(i)];
        if (g < lo) lo = g;
        if (g > hi) hi = g;
      }
      ok = ok && lo <= agreed[static_cast<std::size_t>(i)] &&
           agreed[static_cast<std::size_t>(i)] <= hi;
    }

    std::string ws;
    std::int64_t loss_scaled = 0;
    for (int i = 0; i < kDim; ++i) {
      // agreed coordinates fit in 64 bits by box validity.
      const BigInt& g = agreed[static_cast<std::size_t>(i)];
      const std::int64_t gi =
          (g.negative() ? -1 : 1) *
          static_cast<std::int64_t>(g.magnitude().to_u64());
      weights[i] -= gi;
      ws += FixedPoint(BigInt(weights[i]), kPrecision).to_string() + " ";
      const std::int64_t d = (weights[i] - kTarget[i]) / 1000;
      loss_scaled += d * d;
    }
    std::printf("%-6d %-44s %.4f\n", step, ws.c_str(),
                static_cast<double>(loss_scaled) / 1e6);
  }

  std::printf("\npoisoned gradients filtered, training converged: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
