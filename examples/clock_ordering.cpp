// Decentralized clock for transaction ordering.
//
// Validators hold slightly drifted local clocks (microseconds since epoch)
// and must agree on one timestamp for the next block, resilient to
// validators that try to rush or delay it (the OPODIS'23 decentralized
// clock-network application [14] from the paper's introduction). Convex
// Agreement guarantees the agreed timestamp lies within the honest clocks'
// spread, so no manipulator can time-travel the ledger.
//
// The example runs a sequence of 5 "blocks"; each round of agreement feeds
// the next drift simulation, and the agreed chain of timestamps must be
// monotone because honest clocks advance.
//
// Build & run:  ./build/examples/clock_ordering
#include <cstdio>

#include "ca/driver.h"
#include "util/rng.h"

int main() {
  using namespace coca;

  const int n = 10;
  const int t = 3;

  Rng rng(1700000000);
  // Honest clocks start around t0 with +-50us skew.
  const std::int64_t t0 = 1'700'000'000'000'000;
  std::vector<std::int64_t> clocks(n);
  for (auto& c : clocks) {
    c = t0 + static_cast<std::int64_t>(rng.below(100)) - 50;
  }

  ca::ConvexAgreement protocol;

  std::printf("validator clock network: n=%d, t=%d (rushing manipulators)\n\n",
              n, t);
  std::printf("%-7s %-22s %-10s %s\n", "block", "agreed timestamp (us)",
              "rounds", "monotone?");

  bool ok = true;
  BigInt last_agreed(0);
  for (int block = 1; block <= 5; ++block) {
    ca::SimConfig config;
    config.n = n;
    config.t = t;
    for (int i = 0; i < n; ++i) config.inputs.emplace_back(clocks[i]);
    // Manipulators: one claims the distant future, one the past, one
    // equivocates between both.
    config.corruptions = {{0, adv::Kind::kExtremeHigh},
                          {4, adv::Kind::kExtremeLow},
                          {7, adv::Kind::kSplitBrain}};
    config.extreme_low = BigInt(0);
    config.extreme_high = BigInt(t0 * 2);

    const ca::SimResult result = ca::run_simulation(protocol, config);
    ok = ok && result.agreement() && result.convex_validity(config.inputs);

    BigInt agreed(0);
    for (const auto& out : result.outputs) {
      if (out) {
        agreed = *out;
        break;
      }
    }
    const bool monotone = block == 1 || agreed > last_agreed;
    ok = ok && monotone;
    std::printf("%-7d %-22s %-10zu %s\n", block, agreed.to_decimal().c_str(),
                result.stats.rounds, monotone ? "yes" : "NO");
    last_agreed = agreed;

    // Advance honest clocks ~1ms per block plus fresh jitter.
    for (auto& c : clocks) {
      c += 1000 + static_cast<std::int64_t>(rng.below(20));
    }
  }

  std::printf("\nledger time never manipulated: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
