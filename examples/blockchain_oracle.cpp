// Decentralized price oracle with large values.
//
// Ten oracle nodes report an asset price in wei-style fixed point (18
// decimals, ~90-bit magnitudes); up to 3 nodes are controlled by a
// manipulator who wants to print a fake price (cf. the paper's blockchain-
// oracle application [5]). Besides correctness, this example showcases the
// communication story: the nodes also attach a large audit blob to the
// value (making inputs ~32 Kbit), the regime where Pi_Z's O(l n) beats the
// broadcast-everything baseline's O(l n^2) -- both are run and metered.
//
// Build & run:  ./build/examples/blockchain_oracle
#include <cstdio>

#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "util/rng.h"

int main() {
  using namespace coca;

  const int n = 10;
  const int t = 3;

  // Price of 1 unit: ~3141.59 tokens in 18-decimal fixed point, with
  // per-node jitter, then shifted left to emulate a price+audit-data blob
  // of ~32 Kbits (the oracle commits to price || audit log as one integer).
  Rng rng(31415);
  const BigNat price_base = BigNat::from_decimal("3141590000000000000000");
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    const BigNat jitter(rng.below(100'000'000'000ULL));
    inputs.emplace_back(((price_base + jitter) << 32640) +
                            rng.nat_below_pow2(32600),
                        false);
  }

  ca::ConvexAgreement pi_z;
  ca::DefaultBAStack stack;
  ca::BroadcastTrimCA broadcast(stack.kit());

  const auto attack = [&](const ca::CAProtocol& proto) {
    ca::SimConfig config;
    config.n = n;
    config.t = t;
    config.inputs = inputs;
    // The manipulator equivocates and also floods the wire.
    config.corruptions = {{2, adv::Kind::kSplitBrain},
                          {5, adv::Kind::kExtremeHigh},
                          {8, adv::Kind::kSpam}};
    config.extreme_low = BigInt(0);
    config.extreme_high = BigInt(price_base << 40000, false);  // absurd price
    return ca::run_simulation(proto, config);
  };

  std::printf("oracle network: n=%d nodes, t=%d manipulated\n", n, t);
  std::printf("input size    : ~%zu bits (price + audit blob)\n\n",
              inputs[0].magnitude().bit_length());

  bool ok = true;
  for (const ca::CAProtocol* proto :
       {static_cast<const ca::CAProtocol*>(&pi_z),
        static_cast<const ca::CAProtocol*>(&broadcast)}) {
    const ca::SimResult r = attack(*proto);
    const bool valid = r.agreement() && r.convex_validity(inputs);
    ok = ok && valid;
    // Recover the agreed price (top bits of the agreed blob).
    std::string price = "(none)";
    for (const auto& out : r.outputs) {
      if (out) {
        price = BigNat(out->magnitude() >> 32640).to_decimal();
        break;
      }
    }
    std::printf("%-16s agreed price = %s\n", proto->name().c_str(),
                price.c_str());
    std::printf("%-16s honest bits  = %llu, rounds = %zu, valid = %s\n\n",
                "", static_cast<unsigned long long>(r.stats.honest_bits()),
                r.stats.rounds, valid ? "yes" : "NO");
  }

  std::printf("manipulated price rejected by both protocols: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
