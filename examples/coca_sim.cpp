// coca_sim -- command-line protocol runner.
//
// A downstream user's driver: pick a protocol, network size, corruption
// pattern, and input workload; get the agreed value, property verdicts, and
// cost metrics. Everything the library can do, reachable from a shell.
//
// Usage:
//   coca_sim [--protocol piz|broadcast|highcost]
//            [--n N] [--t T]
//            [--inputs v1,v2,...]       explicit integers (decimal)
//            [--random-bits B]          or: random B-bit magnitudes
//            [--seed S]
//            [--adversary kind[,kind...]]  corrupt the last parties with
//                                          silent|garbage|spam|replay|echo|
//                                          zeroes|ones|extreme-low|
//                                          extreme-high|split-brain
//            [--phases]                 print per-phase bit breakdown
//
// Examples:
//   coca_sim --n 7 --t 2 --inputs -10042,... --adversary extreme-high,...
//   coca_sim --protocol broadcast --n 10 --random-bits 4096 --adversary spam
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "util/rng.h"

namespace {

using namespace coca;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "coca_sim: %s\n(see the header of coca_sim.cpp)\n",
               msg);
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::optional<adv::Kind> parse_kind(const std::string& name) {
  for (const adv::Kind kind : adv::kAllKinds) {
    if (name == adv::to_string(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string protocol_name = "piz";
  int n = 7;
  int t = -1;
  std::vector<BigInt> inputs;
  std::size_t random_bits = 0;
  std::uint64_t seed = 1;
  std::vector<adv::Kind> adversaries;
  bool show_phases = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--protocol") {
      protocol_name = next();
    } else if (arg == "--n") {
      n = std::stoi(next());
    } else if (arg == "--t") {
      t = std::stoi(next());
    } else if (arg == "--inputs") {
      for (const auto& v : split(next(), ',')) {
        inputs.push_back(BigInt::from_decimal(v));
      }
    } else if (arg == "--random-bits") {
      random_bits = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--adversary") {
      for (const auto& name : split(next(), ',')) {
        const auto kind = parse_kind(name);
        if (!kind) usage(("unknown adversary kind: " + name).c_str());
        adversaries.push_back(*kind);
      }
    } else if (arg == "--phases") {
      show_phases = true;
    } else if (arg == "--help" || arg == "-h") {
      usage("usage");
    } else {
      usage(("unknown argument: " + arg).c_str());
    }
  }

  if (n < 1) usage("--n must be positive");
  if (t < 0) t = (n - 1) / 3;
  if (static_cast<int>(adversaries.size()) > t) {
    usage("more adversaries than the corruption budget t");
  }
  if (inputs.empty()) {
    if (random_bits == 0) random_bits = 64;
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      inputs.emplace_back(
          BigNat::pow2(random_bits - 1) + rng.nat_below_pow2(random_bits - 1),
          false);
    }
  }
  if (inputs.size() != static_cast<std::size_t>(n)) {
    usage("--inputs must list exactly n values");
  }

  ca::DefaultBAStack stack;
  std::unique_ptr<ca::CAProtocol> protocol;
  if (protocol_name == "piz") {
    protocol = std::make_unique<ca::ConvexAgreement>();
  } else if (protocol_name == "broadcast") {
    protocol = std::make_unique<ca::BroadcastTrimCA>(stack.kit());
  } else if (protocol_name == "highcost") {
    protocol = std::make_unique<ca::HighCostCAProtocol>(stack.kit());
  } else {
    usage("unknown protocol (piz|broadcast|highcost)");
  }

  ca::SimConfig config;
  config.n = n;
  config.t = t;
  config.inputs = inputs;
  for (std::size_t i = 0; i < adversaries.size(); ++i) {
    config.corruptions.push_back(
        {n - 1 - static_cast<int>(i), adversaries[i]});
  }

  const ca::SimResult result = ca::run_simulation(*protocol, config);

  std::printf("protocol        : %s\n", protocol->name().c_str());
  std::printf("n / t / corrupt : %d / %d / %zu\n", n, t, adversaries.size());
  for (int id = 0; id < n; ++id) {
    const auto& out = result.outputs[static_cast<std::size_t>(id)];
    std::printf("party %-3d input=%s  ->  %s\n", id,
                inputs[static_cast<std::size_t>(id)].to_decimal().c_str(),
                out ? out->to_decimal().c_str() : "(byzantine)");
  }
  std::printf("agreement       : %s\n", result.agreement() ? "yes" : "NO");
  std::printf("convex validity : %s\n",
              result.convex_validity(inputs) ? "yes" : "NO");
  std::printf("rounds          : %zu\n", result.stats.rounds);
  std::printf("honest bits     : %llu\n",
              static_cast<unsigned long long>(result.stats.honest_bits()));
  std::printf("honest messages : %llu\n",
              static_cast<unsigned long long>(result.stats.honest_messages));
  if (show_phases) {
    std::printf("per-phase honest bits (phases nest):\n");
    for (const auto& [name, bytes] : result.stats.honest_bytes_by_phase) {
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(bytes * 8));
    }
  }
  return result.agreement() && result.convex_validity(inputs) ? 0 : 1;
}
