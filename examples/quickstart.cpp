// Quickstart: the paper's motivating scenario.
//
// A cooling room is monitored by 7 sensors; up to 2 may be byzantine.
// Honest sensors read temperatures between -10.05C and -10.03C (represented
// as integer milli-degrees, the paper's "rational numbers with pre-defined
// precision" remark). Two corrupted sensors report +100C. With plain
// Byzantine Agreement the output could be +100C; Convex Agreement pins the
// output inside the honest readings' range.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "ca/driver.h"

int main() {
  using namespace coca;

  const int n = 7;
  const int t = 2;

  ca::ConvexAgreement protocol;  // the paper's Pi_Z with the default BA stack

  ca::SimConfig config;
  config.n = n;
  config.t = t;
  // Honest readings, milli-degrees C.
  config.inputs = {BigInt(-10042), BigInt(-10035), BigInt(-10050),
                   BigInt(-10031), BigInt(-10047),
                   BigInt(0),      BigInt(0)};  // corrupted slots (ignored)
  // Sensors 5 and 6 are corrupted and push +100.000C.
  config.corruptions = {{5, adv::Kind::kExtremeHigh},
                        {6, adv::Kind::kExtremeHigh}};
  config.extreme_high = BigInt(100000);

  const ca::SimResult result = ca::run_simulation(protocol, config);

  std::printf("cooling-room sensors, n=%d, t=%d\n", n, t);
  std::printf("honest readings : -10.050C .. -10.031C\n");
  std::printf("byzantine claim : +100.000C (sensors 5, 6)\n\n");
  for (int id = 0; id < n; ++id) {
    const auto& out = result.outputs[static_cast<std::size_t>(id)];
    if (out) {
      std::printf("sensor %d agreed on %s milli-C\n", id,
                  out->to_decimal().c_str());
    } else {
      std::printf("sensor %d is byzantine\n", id);
    }
  }
  std::printf("\nagreement      : %s\n", result.agreement() ? "yes" : "NO");
  std::printf("convex validity: %s\n",
              result.convex_validity(config.inputs) ? "yes" : "NO");
  std::printf("rounds         : %zu\n", result.stats.rounds);
  std::printf("honest bits    : %llu\n",
              static_cast<unsigned long long>(result.stats.honest_bits()));
  return result.agreement() && result.convex_validity(config.inputs) ? 0 : 1;
}
