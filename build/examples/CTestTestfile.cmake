# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_fusion "/root/repo/build/examples/sensor_fusion")
set_tests_properties(example_sensor_fusion PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blockchain_oracle "/root/repo/build/examples/blockchain_oracle")
set_tests_properties(example_blockchain_oracle PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clock_ordering "/root/repo/build/examples/clock_ordering")
set_tests_properties(example_clock_ordering PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_federated_learning "/root/repo/build/examples/federated_learning")
set_tests_properties(example_federated_learning PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_async_oracle "/root/repo/build/examples/async_oracle")
set_tests_properties(example_async_oracle PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coca_sim "/root/repo/build/examples/coca_sim" "--n" "7" "--t" "2" "--random-bits" "256" "--adversary" "split-brain,spam")
set_tests_properties(example_coca_sim PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
