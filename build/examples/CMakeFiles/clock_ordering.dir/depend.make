# Empty dependencies file for clock_ordering.
# This may be replaced when dependencies are built.
