file(REMOVE_RECURSE
  "CMakeFiles/clock_ordering.dir/clock_ordering.cpp.o"
  "CMakeFiles/clock_ordering.dir/clock_ordering.cpp.o.d"
  "clock_ordering"
  "clock_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
