file(REMOVE_RECURSE
  "CMakeFiles/async_oracle.dir/async_oracle.cpp.o"
  "CMakeFiles/async_oracle.dir/async_oracle.cpp.o.d"
  "async_oracle"
  "async_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
