# Empty dependencies file for async_oracle.
# This may be replaced when dependencies are built.
