# Empty dependencies file for blockchain_oracle.
# This may be replaced when dependencies are built.
