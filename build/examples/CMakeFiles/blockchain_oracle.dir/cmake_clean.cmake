file(REMOVE_RECURSE
  "CMakeFiles/blockchain_oracle.dir/blockchain_oracle.cpp.o"
  "CMakeFiles/blockchain_oracle.dir/blockchain_oracle.cpp.o.d"
  "blockchain_oracle"
  "blockchain_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
