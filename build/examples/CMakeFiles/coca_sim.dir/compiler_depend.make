# Empty compiler generated dependencies file for coca_sim.
# This may be replaced when dependencies are built.
