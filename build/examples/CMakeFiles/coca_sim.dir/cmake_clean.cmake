file(REMOVE_RECURSE
  "CMakeFiles/coca_sim.dir/coca_sim.cpp.o"
  "CMakeFiles/coca_sim.dir/coca_sim.cpp.o.d"
  "coca_sim"
  "coca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
