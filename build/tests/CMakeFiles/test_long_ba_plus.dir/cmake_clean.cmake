file(REMOVE_RECURSE
  "CMakeFiles/test_long_ba_plus.dir/test_long_ba_plus.cpp.o"
  "CMakeFiles/test_long_ba_plus.dir/test_long_ba_plus.cpp.o.d"
  "test_long_ba_plus"
  "test_long_ba_plus.pdb"
  "test_long_ba_plus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_long_ba_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
