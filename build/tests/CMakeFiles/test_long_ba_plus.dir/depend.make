# Empty dependencies file for test_long_ba_plus.
# This may be replaced when dependencies are built.
