# Empty dependencies file for test_bignat.
# This may be replaced when dependencies are built.
