file(REMOVE_RECURSE
  "CMakeFiles/test_bignat.dir/test_bignat.cpp.o"
  "CMakeFiles/test_bignat.dir/test_bignat.cpp.o.d"
  "test_bignat"
  "test_bignat.pdb"
  "test_bignat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bignat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
