file(REMOVE_RECURSE
  "CMakeFiles/test_witnessed_aa.dir/test_witnessed_aa.cpp.o"
  "CMakeFiles/test_witnessed_aa.dir/test_witnessed_aa.cpp.o.d"
  "test_witnessed_aa"
  "test_witnessed_aa.pdb"
  "test_witnessed_aa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_witnessed_aa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
