# Empty compiler generated dependencies file for test_bitstring.
# This may be replaced when dependencies are built.
