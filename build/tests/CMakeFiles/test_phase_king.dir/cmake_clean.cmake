file(REMOVE_RECURSE
  "CMakeFiles/test_phase_king.dir/test_phase_king.cpp.o"
  "CMakeFiles/test_phase_king.dir/test_phase_king.cpp.o.d"
  "test_phase_king"
  "test_phase_king.pdb"
  "test_phase_king[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_king.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
