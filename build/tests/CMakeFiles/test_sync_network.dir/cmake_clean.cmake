file(REMOVE_RECURSE
  "CMakeFiles/test_sync_network.dir/test_sync_network.cpp.o"
  "CMakeFiles/test_sync_network.dir/test_sync_network.cpp.o.d"
  "test_sync_network"
  "test_sync_network.pdb"
  "test_sync_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
