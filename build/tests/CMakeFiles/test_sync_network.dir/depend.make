# Empty dependencies file for test_sync_network.
# This may be replaced when dependencies are built.
