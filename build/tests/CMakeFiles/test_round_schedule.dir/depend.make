# Empty dependencies file for test_round_schedule.
# This may be replaced when dependencies are built.
