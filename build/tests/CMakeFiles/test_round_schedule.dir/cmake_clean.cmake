file(REMOVE_RECURSE
  "CMakeFiles/test_round_schedule.dir/test_round_schedule.cpp.o"
  "CMakeFiles/test_round_schedule.dir/test_round_schedule.cpp.o.d"
  "test_round_schedule"
  "test_round_schedule.pdb"
  "test_round_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_round_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
