file(REMOVE_RECURSE
  "CMakeFiles/test_pi_n.dir/test_pi_n.cpp.o"
  "CMakeFiles/test_pi_n.dir/test_pi_n.cpp.o.d"
  "test_pi_n"
  "test_pi_n.pdb"
  "test_pi_n[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pi_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
