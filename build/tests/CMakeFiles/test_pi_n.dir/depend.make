# Empty dependencies file for test_pi_n.
# This may be replaced when dependencies are built.
