# Empty dependencies file for test_ba_plus.
# This may be replaced when dependencies are built.
