# Empty compiler generated dependencies file for test_subprotocol_edges.
# This may be replaced when dependencies are built.
