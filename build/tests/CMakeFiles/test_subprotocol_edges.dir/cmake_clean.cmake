file(REMOVE_RECURSE
  "CMakeFiles/test_subprotocol_edges.dir/test_subprotocol_edges.cpp.o"
  "CMakeFiles/test_subprotocol_edges.dir/test_subprotocol_edges.cpp.o.d"
  "test_subprotocol_edges"
  "test_subprotocol_edges.pdb"
  "test_subprotocol_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subprotocol_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
