# Empty compiler generated dependencies file for test_high_cost_ca.
# This may be replaced when dependencies are built.
