
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_high_cost_ca.cpp" "tests/CMakeFiles/test_high_cost_ca.dir/test_high_cost_ca.cpp.o" "gcc" "tests/CMakeFiles/test_high_cost_ca.dir/test_high_cost_ca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ca/CMakeFiles/coca_ca.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/coca_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/aa/CMakeFiles/coca_aa.dir/DependInfo.cmake"
  "/root/repo/build/src/ba/CMakeFiles/coca_ba.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/coca_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/coca_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coca_net.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/coca_async.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
