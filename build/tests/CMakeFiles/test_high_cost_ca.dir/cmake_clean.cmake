file(REMOVE_RECURSE
  "CMakeFiles/test_high_cost_ca.dir/test_high_cost_ca.cpp.o"
  "CMakeFiles/test_high_cost_ca.dir/test_high_cost_ca.cpp.o.d"
  "test_high_cost_ca"
  "test_high_cost_ca.pdb"
  "test_high_cost_ca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_high_cost_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
