file(REMOVE_RECURSE
  "CMakeFiles/test_async_protocols.dir/test_async_protocols.cpp.o"
  "CMakeFiles/test_async_protocols.dir/test_async_protocols.cpp.o.d"
  "test_async_protocols"
  "test_async_protocols.pdb"
  "test_async_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
