# Empty dependencies file for test_async_protocols.
# This may be replaced when dependencies are built.
