# Empty dependencies file for test_approximate_agreement.
# This may be replaced when dependencies are built.
