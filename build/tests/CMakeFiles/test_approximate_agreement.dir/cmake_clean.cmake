file(REMOVE_RECURSE
  "CMakeFiles/test_approximate_agreement.dir/test_approximate_agreement.cpp.o"
  "CMakeFiles/test_approximate_agreement.dir/test_approximate_agreement.cpp.o.d"
  "test_approximate_agreement"
  "test_approximate_agreement.pdb"
  "test_approximate_agreement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approximate_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
