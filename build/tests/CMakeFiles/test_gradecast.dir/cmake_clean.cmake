file(REMOVE_RECURSE
  "CMakeFiles/test_gradecast.dir/test_gradecast.cpp.o"
  "CMakeFiles/test_gradecast.dir/test_gradecast.cpp.o.d"
  "test_gradecast"
  "test_gradecast.pdb"
  "test_gradecast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
