# Empty compiler generated dependencies file for test_gradecast.
# This may be replaced when dependencies are built.
