file(REMOVE_RECURSE
  "CMakeFiles/test_pi_z.dir/test_pi_z.cpp.o"
  "CMakeFiles/test_pi_z.dir/test_pi_z.cpp.o.d"
  "test_pi_z"
  "test_pi_z.pdb"
  "test_pi_z[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pi_z.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
