# Empty dependencies file for test_pi_z.
# This may be replaced when dependencies are built.
