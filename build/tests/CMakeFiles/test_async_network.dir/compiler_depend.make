# Empty compiler generated dependencies file for test_async_network.
# This may be replaced when dependencies are built.
