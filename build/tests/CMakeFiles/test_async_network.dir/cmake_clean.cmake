file(REMOVE_RECURSE
  "CMakeFiles/test_async_network.dir/test_async_network.cpp.o"
  "CMakeFiles/test_async_network.dir/test_async_network.cpp.o.d"
  "test_async_network"
  "test_async_network.pdb"
  "test_async_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
