file(REMOVE_RECURSE
  "CMakeFiles/test_turpin_coan.dir/test_turpin_coan.cpp.o"
  "CMakeFiles/test_turpin_coan.dir/test_turpin_coan.cpp.o.d"
  "test_turpin_coan"
  "test_turpin_coan.pdb"
  "test_turpin_coan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turpin_coan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
