# Empty compiler generated dependencies file for test_turpin_coan.
# This may be replaced when dependencies are built.
