file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_length_ca.dir/test_fixed_length_ca.cpp.o"
  "CMakeFiles/test_fixed_length_ca.dir/test_fixed_length_ca.cpp.o.d"
  "test_fixed_length_ca"
  "test_fixed_length_ca.pdb"
  "test_fixed_length_ca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_length_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
