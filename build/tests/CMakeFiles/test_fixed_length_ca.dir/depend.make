# Empty dependencies file for test_fixed_length_ca.
# This may be replaced when dependencies are built.
