# Empty dependencies file for test_find_prefix.
# This may be replaced when dependencies are built.
