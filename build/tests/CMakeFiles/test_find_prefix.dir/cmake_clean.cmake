file(REMOVE_RECURSE
  "CMakeFiles/test_find_prefix.dir/test_find_prefix.cpp.o"
  "CMakeFiles/test_find_prefix.dir/test_find_prefix.cpp.o.d"
  "test_find_prefix"
  "test_find_prefix.pdb"
  "test_find_prefix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_find_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
