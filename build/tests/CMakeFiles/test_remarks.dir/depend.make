# Empty dependencies file for test_remarks.
# This may be replaced when dependencies are built.
