file(REMOVE_RECURSE
  "CMakeFiles/test_remarks.dir/test_remarks.cpp.o"
  "CMakeFiles/test_remarks.dir/test_remarks.cpp.o.d"
  "test_remarks"
  "test_remarks.pdb"
  "test_remarks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
