file(REMOVE_RECURSE
  "CMakeFiles/test_vector_ca.dir/test_vector_ca.cpp.o"
  "CMakeFiles/test_vector_ca.dir/test_vector_ca.cpp.o.d"
  "test_vector_ca"
  "test_vector_ca.pdb"
  "test_vector_ca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
