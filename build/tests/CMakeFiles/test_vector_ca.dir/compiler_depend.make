# Empty compiler generated dependencies file for test_vector_ca.
# This may be replaced when dependencies are built.
