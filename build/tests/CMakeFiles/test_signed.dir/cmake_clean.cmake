file(REMOVE_RECURSE
  "CMakeFiles/test_signed.dir/test_signed.cpp.o"
  "CMakeFiles/test_signed.dir/test_signed.cpp.o.d"
  "test_signed"
  "test_signed.pdb"
  "test_signed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
