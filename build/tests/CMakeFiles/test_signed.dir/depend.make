# Empty dependencies file for test_signed.
# This may be replaced when dependencies are built.
