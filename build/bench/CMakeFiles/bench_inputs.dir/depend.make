# Empty dependencies file for bench_inputs.
# This may be replaced when dependencies are built.
