file(REMOVE_RECURSE
  "CMakeFiles/bench_inputs.dir/bench_inputs.cpp.o"
  "CMakeFiles/bench_inputs.dir/bench_inputs.cpp.o.d"
  "bench_inputs"
  "bench_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
