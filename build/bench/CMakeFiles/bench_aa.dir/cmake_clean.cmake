file(REMOVE_RECURSE
  "CMakeFiles/bench_aa.dir/bench_aa.cpp.o"
  "CMakeFiles/bench_aa.dir/bench_aa.cpp.o.d"
  "bench_aa"
  "bench_aa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
