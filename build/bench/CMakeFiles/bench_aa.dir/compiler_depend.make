# Empty compiler generated dependencies file for bench_aa.
# This may be replaced when dependencies are built.
