# Empty dependencies file for bench_signed.
# This may be replaced when dependencies are built.
