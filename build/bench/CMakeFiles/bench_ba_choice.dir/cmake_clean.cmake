file(REMOVE_RECURSE
  "CMakeFiles/bench_ba_choice.dir/bench_ba_choice.cpp.o"
  "CMakeFiles/bench_ba_choice.dir/bench_ba_choice.cpp.o.d"
  "bench_ba_choice"
  "bench_ba_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ba_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
