# Empty compiler generated dependencies file for bench_ba_choice.
# This may be replaced when dependencies are built.
