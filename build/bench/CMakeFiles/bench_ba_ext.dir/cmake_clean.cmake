file(REMOVE_RECURSE
  "CMakeFiles/bench_ba_ext.dir/bench_ba_ext.cpp.o"
  "CMakeFiles/bench_ba_ext.dir/bench_ba_ext.cpp.o.d"
  "bench_ba_ext"
  "bench_ba_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ba_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
