# Empty compiler generated dependencies file for bench_ba_ext.
# This may be replaced when dependencies are built.
