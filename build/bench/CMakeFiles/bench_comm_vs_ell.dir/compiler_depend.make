# Empty compiler generated dependencies file for bench_comm_vs_ell.
# This may be replaced when dependencies are built.
