file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_vs_ell.dir/bench_comm_vs_ell.cpp.o"
  "CMakeFiles/bench_comm_vs_ell.dir/bench_comm_vs_ell.cpp.o.d"
  "bench_comm_vs_ell"
  "bench_comm_vs_ell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_vs_ell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
