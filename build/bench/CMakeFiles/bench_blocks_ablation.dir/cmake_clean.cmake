file(REMOVE_RECURSE
  "CMakeFiles/bench_blocks_ablation.dir/bench_blocks_ablation.cpp.o"
  "CMakeFiles/bench_blocks_ablation.dir/bench_blocks_ablation.cpp.o.d"
  "bench_blocks_ablation"
  "bench_blocks_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocks_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
