# Empty compiler generated dependencies file for bench_blocks_ablation.
# This may be replaced when dependencies are built.
