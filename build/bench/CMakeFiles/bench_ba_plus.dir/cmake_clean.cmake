file(REMOVE_RECURSE
  "CMakeFiles/bench_ba_plus.dir/bench_ba_plus.cpp.o"
  "CMakeFiles/bench_ba_plus.dir/bench_ba_plus.cpp.o.d"
  "bench_ba_plus"
  "bench_ba_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ba_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
