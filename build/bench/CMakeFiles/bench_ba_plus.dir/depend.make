# Empty dependencies file for bench_ba_plus.
# This may be replaced when dependencies are built.
