# Empty compiler generated dependencies file for bench_comm_vs_n.
# This may be replaced when dependencies are built.
