
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ba/ba_plus.cpp" "src/ba/CMakeFiles/coca_ba.dir/ba_plus.cpp.o" "gcc" "src/ba/CMakeFiles/coca_ba.dir/ba_plus.cpp.o.d"
  "/root/repo/src/ba/dolev_strong.cpp" "src/ba/CMakeFiles/coca_ba.dir/dolev_strong.cpp.o" "gcc" "src/ba/CMakeFiles/coca_ba.dir/dolev_strong.cpp.o.d"
  "/root/repo/src/ba/gradecast.cpp" "src/ba/CMakeFiles/coca_ba.dir/gradecast.cpp.o" "gcc" "src/ba/CMakeFiles/coca_ba.dir/gradecast.cpp.o.d"
  "/root/repo/src/ba/long_ba_plus.cpp" "src/ba/CMakeFiles/coca_ba.dir/long_ba_plus.cpp.o" "gcc" "src/ba/CMakeFiles/coca_ba.dir/long_ba_plus.cpp.o.d"
  "/root/repo/src/ba/phase_king.cpp" "src/ba/CMakeFiles/coca_ba.dir/phase_king.cpp.o" "gcc" "src/ba/CMakeFiles/coca_ba.dir/phase_king.cpp.o.d"
  "/root/repo/src/ba/turpin_coan.cpp" "src/ba/CMakeFiles/coca_ba.dir/turpin_coan.cpp.o" "gcc" "src/ba/CMakeFiles/coca_ba.dir/turpin_coan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coca_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/coca_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/coca_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coca_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
