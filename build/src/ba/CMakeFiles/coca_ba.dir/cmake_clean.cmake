file(REMOVE_RECURSE
  "CMakeFiles/coca_ba.dir/ba_plus.cpp.o"
  "CMakeFiles/coca_ba.dir/ba_plus.cpp.o.d"
  "CMakeFiles/coca_ba.dir/dolev_strong.cpp.o"
  "CMakeFiles/coca_ba.dir/dolev_strong.cpp.o.d"
  "CMakeFiles/coca_ba.dir/gradecast.cpp.o"
  "CMakeFiles/coca_ba.dir/gradecast.cpp.o.d"
  "CMakeFiles/coca_ba.dir/long_ba_plus.cpp.o"
  "CMakeFiles/coca_ba.dir/long_ba_plus.cpp.o.d"
  "CMakeFiles/coca_ba.dir/phase_king.cpp.o"
  "CMakeFiles/coca_ba.dir/phase_king.cpp.o.d"
  "CMakeFiles/coca_ba.dir/turpin_coan.cpp.o"
  "CMakeFiles/coca_ba.dir/turpin_coan.cpp.o.d"
  "libcoca_ba.a"
  "libcoca_ba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
