# Empty dependencies file for coca_ba.
# This may be replaced when dependencies are built.
