file(REMOVE_RECURSE
  "libcoca_ba.a"
)
