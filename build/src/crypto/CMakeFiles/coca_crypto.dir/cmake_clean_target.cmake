file(REMOVE_RECURSE
  "libcoca_crypto.a"
)
