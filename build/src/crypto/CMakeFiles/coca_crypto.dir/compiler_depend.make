# Empty compiler generated dependencies file for coca_crypto.
# This may be replaced when dependencies are built.
