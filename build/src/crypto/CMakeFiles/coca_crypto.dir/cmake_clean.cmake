file(REMOVE_RECURSE
  "CMakeFiles/coca_crypto.dir/merkle.cpp.o"
  "CMakeFiles/coca_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/coca_crypto.dir/sha256.cpp.o"
  "CMakeFiles/coca_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/coca_crypto.dir/sim_signatures.cpp.o"
  "CMakeFiles/coca_crypto.dir/sim_signatures.cpp.o.d"
  "libcoca_crypto.a"
  "libcoca_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
