file(REMOVE_RECURSE
  "CMakeFiles/coca_ca.dir/broadcast_ca.cpp.o"
  "CMakeFiles/coca_ca.dir/broadcast_ca.cpp.o.d"
  "CMakeFiles/coca_ca.dir/convex_agreement.cpp.o"
  "CMakeFiles/coca_ca.dir/convex_agreement.cpp.o.d"
  "CMakeFiles/coca_ca.dir/driver.cpp.o"
  "CMakeFiles/coca_ca.dir/driver.cpp.o.d"
  "CMakeFiles/coca_ca.dir/find_prefix.cpp.o"
  "CMakeFiles/coca_ca.dir/find_prefix.cpp.o.d"
  "CMakeFiles/coca_ca.dir/fixed_length_ca.cpp.o"
  "CMakeFiles/coca_ca.dir/fixed_length_ca.cpp.o.d"
  "CMakeFiles/coca_ca.dir/fixed_length_ca_blocks.cpp.o"
  "CMakeFiles/coca_ca.dir/fixed_length_ca_blocks.cpp.o.d"
  "CMakeFiles/coca_ca.dir/get_output.cpp.o"
  "CMakeFiles/coca_ca.dir/get_output.cpp.o.d"
  "CMakeFiles/coca_ca.dir/high_cost_ca.cpp.o"
  "CMakeFiles/coca_ca.dir/high_cost_ca.cpp.o.d"
  "CMakeFiles/coca_ca.dir/pi_n.cpp.o"
  "CMakeFiles/coca_ca.dir/pi_n.cpp.o.d"
  "CMakeFiles/coca_ca.dir/pi_z.cpp.o"
  "CMakeFiles/coca_ca.dir/pi_z.cpp.o.d"
  "CMakeFiles/coca_ca.dir/signed_ca.cpp.o"
  "CMakeFiles/coca_ca.dir/signed_ca.cpp.o.d"
  "CMakeFiles/coca_ca.dir/vector_ca.cpp.o"
  "CMakeFiles/coca_ca.dir/vector_ca.cpp.o.d"
  "libcoca_ca.a"
  "libcoca_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
