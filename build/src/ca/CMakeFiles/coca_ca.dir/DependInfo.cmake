
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ca/broadcast_ca.cpp" "src/ca/CMakeFiles/coca_ca.dir/broadcast_ca.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/broadcast_ca.cpp.o.d"
  "/root/repo/src/ca/convex_agreement.cpp" "src/ca/CMakeFiles/coca_ca.dir/convex_agreement.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/convex_agreement.cpp.o.d"
  "/root/repo/src/ca/driver.cpp" "src/ca/CMakeFiles/coca_ca.dir/driver.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/driver.cpp.o.d"
  "/root/repo/src/ca/find_prefix.cpp" "src/ca/CMakeFiles/coca_ca.dir/find_prefix.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/find_prefix.cpp.o.d"
  "/root/repo/src/ca/fixed_length_ca.cpp" "src/ca/CMakeFiles/coca_ca.dir/fixed_length_ca.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/fixed_length_ca.cpp.o.d"
  "/root/repo/src/ca/fixed_length_ca_blocks.cpp" "src/ca/CMakeFiles/coca_ca.dir/fixed_length_ca_blocks.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/fixed_length_ca_blocks.cpp.o.d"
  "/root/repo/src/ca/get_output.cpp" "src/ca/CMakeFiles/coca_ca.dir/get_output.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/get_output.cpp.o.d"
  "/root/repo/src/ca/high_cost_ca.cpp" "src/ca/CMakeFiles/coca_ca.dir/high_cost_ca.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/high_cost_ca.cpp.o.d"
  "/root/repo/src/ca/pi_n.cpp" "src/ca/CMakeFiles/coca_ca.dir/pi_n.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/pi_n.cpp.o.d"
  "/root/repo/src/ca/pi_z.cpp" "src/ca/CMakeFiles/coca_ca.dir/pi_z.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/pi_z.cpp.o.d"
  "/root/repo/src/ca/signed_ca.cpp" "src/ca/CMakeFiles/coca_ca.dir/signed_ca.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/signed_ca.cpp.o.d"
  "/root/repo/src/ca/vector_ca.cpp" "src/ca/CMakeFiles/coca_ca.dir/vector_ca.cpp.o" "gcc" "src/ca/CMakeFiles/coca_ca.dir/vector_ca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ba/CMakeFiles/coca_ba.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/coca_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/coca_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/coca_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coca_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
