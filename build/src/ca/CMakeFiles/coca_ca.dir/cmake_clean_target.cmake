file(REMOVE_RECURSE
  "libcoca_ca.a"
)
