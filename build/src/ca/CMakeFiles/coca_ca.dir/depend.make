# Empty dependencies file for coca_ca.
# This may be replaced when dependencies are built.
