file(REMOVE_RECURSE
  "libcoca_aa.a"
)
