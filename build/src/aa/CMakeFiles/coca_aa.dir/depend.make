# Empty dependencies file for coca_aa.
# This may be replaced when dependencies are built.
