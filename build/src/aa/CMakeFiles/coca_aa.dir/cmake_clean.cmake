file(REMOVE_RECURSE
  "CMakeFiles/coca_aa.dir/approximate_agreement.cpp.o"
  "CMakeFiles/coca_aa.dir/approximate_agreement.cpp.o.d"
  "libcoca_aa.a"
  "libcoca_aa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_aa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
