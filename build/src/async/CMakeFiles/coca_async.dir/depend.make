# Empty dependencies file for coca_async.
# This may be replaced when dependencies are built.
