
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/async/async_aa.cpp" "src/async/CMakeFiles/coca_async.dir/async_aa.cpp.o" "gcc" "src/async/CMakeFiles/coca_async.dir/async_aa.cpp.o.d"
  "/root/repo/src/async/async_network.cpp" "src/async/CMakeFiles/coca_async.dir/async_network.cpp.o" "gcc" "src/async/CMakeFiles/coca_async.dir/async_network.cpp.o.d"
  "/root/repo/src/async/bracha_rbc.cpp" "src/async/CMakeFiles/coca_async.dir/bracha_rbc.cpp.o" "gcc" "src/async/CMakeFiles/coca_async.dir/bracha_rbc.cpp.o.d"
  "/root/repo/src/async/witnessed_aa.cpp" "src/async/CMakeFiles/coca_async.dir/witnessed_aa.cpp.o" "gcc" "src/async/CMakeFiles/coca_async.dir/witnessed_aa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
