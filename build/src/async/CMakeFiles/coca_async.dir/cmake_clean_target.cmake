file(REMOVE_RECURSE
  "libcoca_async.a"
)
