file(REMOVE_RECURSE
  "CMakeFiles/coca_async.dir/async_aa.cpp.o"
  "CMakeFiles/coca_async.dir/async_aa.cpp.o.d"
  "CMakeFiles/coca_async.dir/async_network.cpp.o"
  "CMakeFiles/coca_async.dir/async_network.cpp.o.d"
  "CMakeFiles/coca_async.dir/bracha_rbc.cpp.o"
  "CMakeFiles/coca_async.dir/bracha_rbc.cpp.o.d"
  "CMakeFiles/coca_async.dir/witnessed_aa.cpp.o"
  "CMakeFiles/coca_async.dir/witnessed_aa.cpp.o.d"
  "libcoca_async.a"
  "libcoca_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
