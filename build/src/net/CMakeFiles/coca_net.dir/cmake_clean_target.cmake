file(REMOVE_RECURSE
  "libcoca_net.a"
)
