file(REMOVE_RECURSE
  "CMakeFiles/coca_net.dir/sync_network.cpp.o"
  "CMakeFiles/coca_net.dir/sync_network.cpp.o.d"
  "libcoca_net.a"
  "libcoca_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
