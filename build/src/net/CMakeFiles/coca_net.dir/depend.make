# Empty dependencies file for coca_net.
# This may be replaced when dependencies are built.
