# Empty dependencies file for coca_adversary.
# This may be replaced when dependencies are built.
