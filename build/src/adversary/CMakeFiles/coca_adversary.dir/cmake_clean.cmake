file(REMOVE_RECURSE
  "CMakeFiles/coca_adversary.dir/spec.cpp.o"
  "CMakeFiles/coca_adversary.dir/spec.cpp.o.d"
  "libcoca_adversary.a"
  "libcoca_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
