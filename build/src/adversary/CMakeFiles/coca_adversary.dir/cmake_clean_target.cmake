file(REMOVE_RECURSE
  "libcoca_adversary.a"
)
