file(REMOVE_RECURSE
  "CMakeFiles/coca_codec.dir/gf16.cpp.o"
  "CMakeFiles/coca_codec.dir/gf16.cpp.o.d"
  "CMakeFiles/coca_codec.dir/reed_solomon.cpp.o"
  "CMakeFiles/coca_codec.dir/reed_solomon.cpp.o.d"
  "libcoca_codec.a"
  "libcoca_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
