
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/gf16.cpp" "src/codec/CMakeFiles/coca_codec.dir/gf16.cpp.o" "gcc" "src/codec/CMakeFiles/coca_codec.dir/gf16.cpp.o.d"
  "/root/repo/src/codec/reed_solomon.cpp" "src/codec/CMakeFiles/coca_codec.dir/reed_solomon.cpp.o" "gcc" "src/codec/CMakeFiles/coca_codec.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
