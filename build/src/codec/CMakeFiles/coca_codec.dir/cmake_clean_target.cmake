file(REMOVE_RECURSE
  "libcoca_codec.a"
)
