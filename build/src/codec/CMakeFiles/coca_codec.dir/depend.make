# Empty dependencies file for coca_codec.
# This may be replaced when dependencies are built.
