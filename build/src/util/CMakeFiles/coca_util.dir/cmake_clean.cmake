file(REMOVE_RECURSE
  "CMakeFiles/coca_util.dir/bignat.cpp.o"
  "CMakeFiles/coca_util.dir/bignat.cpp.o.d"
  "CMakeFiles/coca_util.dir/bitstring.cpp.o"
  "CMakeFiles/coca_util.dir/bitstring.cpp.o.d"
  "CMakeFiles/coca_util.dir/fixed_point.cpp.o"
  "CMakeFiles/coca_util.dir/fixed_point.cpp.o.d"
  "libcoca_util.a"
  "libcoca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
