# Empty compiler generated dependencies file for coca_util.
# This may be replaced when dependencies are built.
