// T3 -- round complexity vs n.
//
// Claim under test (Corollary 2): ROUNDS(Pi_Z) = O(n log n) -- O(log n)
// invocations of a Theta(n)-round Pi_BA -- while HighCostCA runs in O(n)
// rounds. BroadcastTrimCA is included for completeness; our harness runs
// its n broadcast instances sequentially, so its measured rounds carry an
// extra factor n versus an interleaved implementation (see EXPERIMENTS.md).
#include "bench_support.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const std::size_t ell = 4096;
  const int ns[] = {4, 7, 10, 13, 16, 19, 25, 31};

  const ca::ConvexAgreement pi_z;
  const ca::DefaultBAStack stack;
  const ca::BroadcastTrimCA broadcast(stack.kit());
  const ca::HighCostCAProtocol high_cost(stack.kit());

  std::printf("# T3: rounds vs n (l = %zu bits, spread inputs)\n", ell);
  std::printf("%-5s %-10s %-14s %-12s %-18s\n", "n", "PiZ", "HighCostCA",
              "Broadcast", "PiZ/(n*log2(n))");

  std::vector<double> xs, ours, hc;
  for (const int n : ns) {
    const auto inputs = spread_inputs(n, ell, 4000 + static_cast<unsigned>(n));
    const Cost a = measure(pi_z, n, inputs, max_t(n));
    const Cost c = measure(high_cost, n, inputs, max_t(n));
    const Cost b = measure(broadcast, n, inputs, max_t(n));
    xs.push_back(n);
    ours.push_back(static_cast<double>(a.rounds));
    hc.push_back(static_cast<double>(c.rounds));
    std::printf("%-5d %-10zu %-14zu %-12zu %-18.2f\n", n, a.rounds, c.rounds,
                b.rounds,
                static_cast<double>(a.rounds) /
                    (n * std::log2(static_cast<double>(n))));
  }

  std::printf("\nempirical log-log slope in n:  PiZ=%.2f  HighCost=%.2f   "
              "(theory: ~1.x with log factor, ~1)\n",
              loglog_slope(xs, ours), loglog_slope(xs, hc));
  return 0;
}
