// T8 -- input-pattern sensitivity of Pi_Z.
//
// Claim under test: the binary search over prefixes adapts to the honest
// inputs' structure. Identical inputs terminate after FindPrefix alone
// (every Pi_lBA+ returns a value, never bottom); long shared prefixes keep
// later Pi_lBA+ windows agreeing; fully spread inputs are the worst case.
// Costs must stay within the same asymptotic envelope in all cases.
#include "bench_support.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int n = 10;
  const int t = max_t(n);
  const std::size_t ell = 1u << 14;
  const ca::ConvexAgreement pi_z;

  struct PatternCase {
    const char* name;
    std::vector<BigInt> inputs;
  };
  Rng rng(101);
  const BigInt identical(BigNat::pow2(ell - 1) + rng.nat_below_pow2(ell - 2),
                         false);
  std::vector<PatternCase> cases;
  cases.push_back({"identical", std::vector<BigInt>(
                                    static_cast<std::size_t>(n), identical)});
  cases.push_back({"cluster-8bit", clustered_inputs(n, ell, 8, 102)});
  cases.push_back({"cluster-64bit", clustered_inputs(n, ell, 64, 103)});
  cases.push_back({"cluster-1024bit", clustered_inputs(n, ell, 1024, 104)});
  cases.push_back({"spread", spread_inputs(n, ell, 105)});
  {
    // Two camps at maximal prefix distance: 2^(l-1)-1 vs 2^(l-1).
    std::vector<BigInt> camps;
    for (int i = 0; i < n; ++i) {
      camps.emplace_back(i % 2 == 0
                             ? BigNat::pow2(ell - 1) - BigNat(1)
                             : BigNat::pow2(ell - 1),
                         false);
    }
    cases.push_back({"carry-boundary", std::move(camps)});
  }

  std::printf("# T8: Pi_Z cost vs honest input pattern (n = %d, t = %d, "
              "l = %zu, t replay corruptions)\n",
              n, t, ell);
  std::printf("%-16s %-16s %-10s\n", "pattern", "honest bits", "rounds");
  for (const auto& c : cases) {
    const Cost cost = measure(pi_z, n, c.inputs, t, adv::Kind::kReplay);
    std::printf("%-16s %-16s %-10zu\n", c.name,
                human_bits(cost.bits).c_str(), cost.rounds);
  }
  std::printf("\n(theory: identical inputs skip GetOutput; cost rises mildly "
              "with spread as more Pi_lBA+ iterations return bottom and "
              "re-run on updated values; all stay O(l n + poly))\n");
  return 0;
}
