// Microbenchmarks (google-benchmark) for every substrate: SHA-256, Merkle
// build/verify, Reed-Solomon encode/decode, Bitstring/BigNat kernels, and
// the BA building blocks on the simulator.
#include <benchmark/benchmark.h>

#include "ba/long_ba_plus.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "codec/reed_solomon.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "net/sync_network.h"
#include "util/rng.h"

namespace {

using namespace coca;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(2);
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(rng.bytes(128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::build(leaves));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(8)->Arg(32)->Arg(128)->Arg(1024);

void BM_MerkleVerify(benchmark::State& state) {
  Rng rng(3);
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(rng.bytes(128));
  const auto tree = crypto::MerkleTree::build(leaves);
  const auto witness = tree.witness(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::verify(
        tree.root(), leaves.size(), 1, leaves[1], witness));
  }
}
BENCHMARK(BM_MerkleVerify)->Arg(32)->Arg(1024);

void BM_RSEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  const codec::ReedSolomon rs(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n - t));
  Rng rng(4);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_RSEncode)
    ->Args({10, 4096})
    ->Args({10, 65536})
    ->Args({31, 65536})
    ->Args({100, 65536});

void BM_RSDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  const std::size_t k = static_cast<std::size_t>(n - t);
  const codec::ReedSolomon rs(static_cast<std::size_t>(n), k);
  Rng rng(5);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(1)));
  const auto shares = rs.encode(data);
  // Decode from the non-systematic tail to force real interpolation.
  std::vector<std::pair<std::size_t, Bytes>> pool;
  for (std::size_t i = static_cast<std::size_t>(n) - k;
       i < static_cast<std::size_t>(n); ++i) {
    pool.emplace_back(i, shares[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(pool, data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_RSDecode)->Args({10, 65536})->Args({31, 65536});

void BM_BitstringSubstr(benchmark::State& state) {
  Rng rng(6);
  const Bitstring b = rng.bits(static_cast<std::size_t>(state.range(0)));
  std::size_t pos = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.substr(pos, b.size() / 2));
    pos = (pos * 7 + 1) % (b.size() / 2);
  }
}
BENCHMARK(BM_BitstringSubstr)->Arg(1 << 14)->Arg(1 << 20);

void BM_BitstringNumericCompare(benchmark::State& state) {
  Rng rng(7);
  const Bitstring a = rng.bits(static_cast<std::size_t>(state.range(0)));
  Bitstring b = a;
  b.set_bit(b.size() - 1, !b.bit(b.size() - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitstring::numeric_compare(a, b));
  }
}
BENCHMARK(BM_BitstringNumericCompare)->Arg(1 << 14)->Arg(1 << 20);

void BM_BigNatMul(benchmark::State& state) {
  Rng rng(8);
  const BigNat a = rng.nat_below_pow2(static_cast<std::size_t>(state.range(0)));
  const BigNat b = rng.nat_below_pow2(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigNatMul)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BigNatToBits(benchmark::State& state) {
  Rng rng(9);
  const BigNat a = rng.nat_below_pow2(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_bits(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_BigNatToBits)->Arg(4096)->Arg(65536);

// Whole-protocol building blocks on the simulator (measures wall time of a
// full lock-step run including threading overhead).
void BM_PhaseKingBinary(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  const ba::PhaseKingBinary ba;
  for (auto _ : state) {
    net::SyncNetwork net(n, t);
    for (int id = 0; id < n; ++id) {
      net.set_honest(id, [&ba, id](net::PartyContext& ctx) {
        benchmark::DoNotOptimize(ba.run(ctx, id % 2 == 0));
      });
    }
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(BM_PhaseKingBinary)->Arg(4)->Arg(10)->Arg(31)->Unit(benchmark::kMillisecond);

void BM_LongBAPlus64K(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::BAKit kit{&bin, &tc};
  const ba::LongBAPlus lba(kit);
  Rng rng(10);
  const Bytes value = rng.bytes(64 * 1024);
  for (auto _ : state) {
    net::SyncNetwork net(n, t);
    for (int id = 0; id < n; ++id) {
      net.set_honest(id, [&](net::PartyContext& ctx) {
        benchmark::DoNotOptimize(lba.run(ctx, value));
      });
    }
    benchmark::DoNotOptimize(net.run());
  }
}
BENCHMARK(BM_LongBAPlus64K)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
