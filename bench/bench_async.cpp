// Asynchronous substrate experiments (the paper's future-work direction).
//
// (a) Bracha reliable broadcast: bits vs value size and n (the O(l n^2)
//     cost that makes per-round RBC-based protocols expensive).
// (b) Async AA: the plain t < n/5 single-exchange variant vs the witnessed
//     t < n/3 variant -- cost per iteration, and contraction behaviour
//     under the static adversarial schedule (where the plain variant
//     stalls: the negative result pinned in test_async_protocols.cpp).
#include <cstdio>

#include "async/async_aa.h"
#include "async/bracha_rbc.h"
#include "async/witnessed_aa.h"
#include "bench_support.h"
#include "util/wire.h"

namespace {

using namespace coca;
using namespace coca::async;

std::uint64_t rbc_bits(int n, std::size_t len) {
  const int t = (n - 1) / 3;
  AsyncNetwork net(n, t, Scheduling::kFifo, 1);
  Rng rng(len);
  const Bytes value = rng.bytes(len);
  for (int id = 0; id < n; ++id) {
    net.set_process(id, [&, id](ProcessContext& ctx) {
      (void)BrachaRbc::run(ctx, 0, id == 0 ? std::optional<Bytes>(value)
                                           : std::nullopt);
    });
  }
  return net.run().honest_bits();
}

struct AaRun {
  std::uint64_t bits;
  std::size_t deliveries;
  BigNat diameter;
};

// t processes are corrupted: they flood every round tag with extreme
// values, the attack that parks the plain variant's median map.
AaRun run_plain(int n, int t, Scheduling policy, std::size_t rounds,
                const std::vector<BigInt>& inputs) {
  AsyncNetwork net(n, t, policy, 3);
  std::vector<std::optional<BigInt>> outputs(n);
  const AsyncApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    if (id < t) {
      net.set_byzantine_process(id, [n, rounds, id](ProcessContext& ctx) {
        (void)id;
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int to = 0; to < n; ++to) {
            Writer w;
            w.u64(r);
            w.u8(to % 2);  // equivocate per recipient: creates value camps
            w.bignat(BigNat::pow2(40));
            ctx.send(to, std::move(w).take());
          }
        }
      });
      continue;
    }
    net.set_process(id, [&, id](ProcessContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
    });
  }
  const AsyncStats stats = net.run();
  BigInt lo = *outputs[t], hi = *outputs[t];
  for (int id = t; id < n; ++id) {
    if (*outputs[id] < lo) lo = *outputs[id];
    if (*outputs[id] > hi) hi = *outputs[id];
  }
  return {stats.honest_bits(), stats.deliveries, (hi - lo).magnitude()};
}

AaRun run_witnessed(int n, int t, Scheduling policy, std::size_t rounds,
                    const std::vector<BigInt>& inputs) {
  AsyncNetwork net(n, t, policy, 3);
  std::vector<std::optional<BigInt>> outputs(n);
  const WitnessedApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    if (id < t) {
      // Corrupted: reliably broadcasts extreme values each round.
      net.set_byzantine_process(id, [n, rounds, id](ProcessContext& ctx) {
        for (std::uint64_t r = 0; r < rounds; ++r) {
          Writer inner;
          inner.u8(id % 2);
          inner.bignat(BigNat::pow2(40));
          Writer w;
          w.u64(r);
          w.u8(0);  // INIT
          w.u32(static_cast<std::uint32_t>(id));
          w.bytes(inner.peek());
          const Bytes payload = std::move(w).take();
          for (int to = 0; to < n; ++to) ctx.send(to, payload);
        }
      });
      continue;
    }
    net.set_process(id, [&, id](ProcessContext& ctx) {
      aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds,
             [&outputs, id](const BigInt& v) {
               outputs[static_cast<std::size_t>(id)] = v;
             });
    });
  }
  const AsyncStats stats = net.run();
  BigInt lo = *outputs[t], hi = *outputs[t];
  for (int id = t; id < n; ++id) {
    if (*outputs[id] < lo) lo = *outputs[id];
    if (*outputs[id] > hi) hi = *outputs[id];
  }
  return {stats.honest_bits(), stats.deliveries, (hi - lo).magnitude()};
}

}  // namespace

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using coca::bench::human_bits;

  std::printf("# Async-a: Bracha reliable broadcast cost (honest bits)\n");
  std::printf("%-10s %-14s %-14s %-14s\n", "bytes", "n=4", "n=7", "n=13");
  for (const std::size_t len : {16u, 256u, 4096u, 65536u}) {
    std::printf("%-10zu %-14s %-14s %-14s\n", len,
                human_bits(rbc_bits(4, len)).c_str(),
                human_bits(rbc_bits(7, len)).c_str(),
                human_bits(rbc_bits(13, len)).c_str());
  }
  std::printf("(theory: O(l n^2) -- every byte is echoed and readied by "
              "every pair)\n\n");

  std::printf("# Async-b: plain (t<n/5) vs witnessed (t<n/3) async AA, "
              "16 iterations, inputs spread over 2^20\n");
  std::printf("%-22s %-12s %-14s %-12s %-16s\n", "variant/scheduler", "n/t",
              "honest bits", "deliveries", "final diameter");
  Rng rng(71);
  std::vector<BigInt> inputs11, inputs10;
  for (int i = 0; i < 11; ++i) {
    inputs11.emplace_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  }
  for (int i = 0; i < 10; ++i) {
    inputs10.emplace_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  }
  const std::size_t iters = 16;
  for (const auto& [name, policy] :
       std::initializer_list<std::pair<const char*, Scheduling>>{
           {"random", Scheduling::kRandomDelay},
           {"static-fifo", Scheduling::kFifo}}) {
    const AaRun p = run_plain(11, 2, policy, iters, inputs11);
    std::printf("plain/%-16s %-12s %-14s %-12zu %-16s\n", name, "11/2",
                human_bits(p.bits).c_str(), p.deliveries,
                p.diameter.to_decimal().c_str());
  }
  for (const auto& [name, policy] :
       std::initializer_list<std::pair<const char*, Scheduling>>{
           {"random", Scheduling::kRandomDelay},
           {"static-fifo", Scheduling::kFifo}}) {
    const AaRun w = run_witnessed(10, 3, policy, iters, inputs10);
    std::printf("witnessed/%-12s %-12s %-14s %-12zu %-16s\n", name, "10/3",
                human_bits(w.bits).c_str(), w.deliveries,
                w.diameter.to_decimal().c_str());
  }
  std::printf("\n(claims: the plain variant is ~20x cheaper per iteration "
              "but tolerates only t < n/5 and has no worst-case contraction "
              "guarantee (a median-map fixed point exists; see "
              "test_async_protocols.cpp); the witnessed variant pays the "
              "RBC+report overhead for guaranteed halving under every "
              "schedule at the optimal t < n/3 -- the trade-off behind the "
              "paper's closing open problem on asynchronous CA)\n");
  return 0;
}
