// T1 -- honest communication vs n at fixed l.
//
// Claim under test (Theorem 5 / Corollary 1 vs the baselines): at a fixed
// input length l large enough for the O(l n) term to dominate,
//   BITS(Pi_Z)            = O(l n    + kappa n^2 log^2 n)
//   BITS(BroadcastTrimCA) = O(l n^2  + kappa n^3 log n)
//   BITS(HighCostCA)      = O(l n^3)
// so the measured log-log slopes in n should order roughly 1 < 2 < 3 and
// Pi_Z must win everywhere in the sweep.
#include "bench_support.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const std::size_t ell = 16384;
  const int ns[] = {4, 7, 10, 13, 16, 19, 25, 31};

  const ca::ConvexAgreement pi_z;
  const ca::DefaultBAStack stack;
  const ca::BroadcastTrimCA broadcast(stack.kit());
  const ca::HighCostCAProtocol high_cost(stack.kit());

  std::printf("# T1: honest communication vs n (l = %zu bits, spread inputs, "
              "t = floor((n-1)/3), t silent corruptions)\n",
              ell);
  std::printf("%-5s %-16s %-18s %-16s %-12s\n", "n", "PiZ", "BroadcastTrim",
              "HighCostCA", "PiZ/(l*n)");

  std::vector<double> xs, ours, bc, hc;
  for (const int n : ns) {
    const auto inputs = spread_inputs(n, ell, 1001 + static_cast<unsigned>(n));
    const Cost a = measure(pi_z, n, inputs, max_t(n));
    const Cost b = measure(broadcast, n, inputs, max_t(n));
    // HighCostCA moves l*n^3 bits; cap the sweep where that stays sane.
    const bool run_hc = n <= 19;
    const Cost c = run_hc ? measure(high_cost, n, inputs, max_t(n)) : Cost{};
    xs.push_back(n);
    ours.push_back(static_cast<double>(a.bits));
    bc.push_back(static_cast<double>(b.bits));
    if (run_hc) hc.push_back(static_cast<double>(c.bits));
    std::printf("%-5d %-16s %-18s %-16s %-12.2f\n", n,
                human_bits(a.bits).c_str(), human_bits(b.bits).c_str(),
                run_hc ? human_bits(c.bits).c_str() : "-",
                static_cast<double>(a.bits) /
                    (static_cast<double>(ell) * n));
  }

  std::vector<double> xs_hc(xs.begin(), xs.begin() + hc.size());
  std::printf("\nempirical log-log slope in n:  PiZ=%.2f  Broadcast=%.2f  "
              "HighCost=%.2f\n",
              loglog_slope(xs, ours), loglog_slope(xs, bc),
              loglog_slope(xs_hc, hc));
  std::printf("(theory: Broadcast ~2, HighCost ~3. At fixed moderate l the "
              "kappa n^2 log^2 n term drives PiZ toward ~2 as n grows -- the "
              "optimality threshold l = Omega(kappa n log^2 n) recedes; part "
              "b keeps l in the optimal regime.)\n");

  // ---- Part (b): scale l = kappa * n * log^2 n so every point sits in the
  // paper's optimality regime; here PiZ must look linear in n.
  std::printf("\n# T1b: same sweep with l = kappa*n*log2(n)^2 (optimal "
              "regime)\n");
  std::printf("%-5s %-10s %-16s %-18s %-12s %-10s\n", "n", "l(bits)", "PiZ",
              "BroadcastTrim", "PiZ/(l*n)", "ratio");
  std::vector<double> xs_b, ours_b;
  for (const int n : ns) {
    const double log2n = std::log2(static_cast<double>(n));
    const std::size_t ell_b =
        static_cast<std::size_t>(256.0 * n * log2n * log2n);
    const auto inputs = spread_inputs(n, ell_b, 1100 + static_cast<unsigned>(n));
    const Cost a = measure(pi_z, n, inputs, max_t(n));
    const Cost b = measure(broadcast, n, inputs, max_t(n));
    xs_b.push_back(n);
    ours_b.push_back(static_cast<double>(a.bits));
    std::printf("%-5d %-10zu %-16s %-18s %-12.2f %-10.2f\n", n, ell_b,
                human_bits(a.bits).c_str(), human_bits(b.bits).c_str(),
                static_cast<double>(a.bits) /
                    (static_cast<double>(ell_b) * n),
                static_cast<double>(b.bits) / static_cast<double>(a.bits));
  }
  std::printf("\nempirical log-log slope in n (optimal regime): PiZ=%.2f "
              "(theory: ~2.6, because l itself grows ~ n log^2 n here; the "
              "optimality evidence is the flat PiZ/(l*n) column = Theta(l n) "
              "bits, and the baseline ratio growing ~ n)\n",
              loglog_slope(xs_b, ours_b));

  // ---- Part (c): wall-clock speedup of the parallel round schedule at the
  // largest configured n, on the compute-heavy optimal-regime workload.
  // Metered bits must be unchanged -- the schedule is a wall-clock knob only.
  {
    const int n = ns[std::size(ns) - 1];
    const int threads = options().threads > 1 ? options().threads : 8;
    const double log2n = std::log2(static_cast<double>(n));
    const std::size_t ell_c =
        static_cast<std::size_t>(256.0 * n * log2n * log2n);
    const auto inputs = spread_inputs(n, ell_c, 1200 + static_cast<unsigned>(n));
    std::printf("\n# T1c: parallel round-engine speedup at n = %d "
                "(l = %zu bits)\n", n, ell_c);
    report_parallel_speedup(pi_z, n, inputs, threads, max_t(n));
  }
  return 0;
}
