// Shared benchmark plumbing: workload generators, cost measurement, and
// table printing. Every table/figure binary (T1..T8, F1, F2) uses these so
// all experiments measure the exact same execution paths as the tests.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "util/rng.h"

namespace coca::bench {

inline int max_t(int n) { return (n - 1) / 3; }

inline std::string human_bits(std::uint64_t bits);

/// Process-wide bench options. `threads` picks the SyncNetwork round-slice
/// schedule for every measured run (see net::ExecPolicy); metered bits are
/// schedule-independent, so tables are comparable across thread counts.
struct Options {
  int threads = 1;
};

inline Options& options() {
  static Options opts;
  return opts;
}

/// Parses shared bench flags: `--threads N` (or `--threads=N`), defaulting
/// to the COCA_THREADS environment variable, then serial. Call first thing
/// in every sweep bench's main().
inline void parse_args(int argc, char** argv) {
  options().threads = net::ExecPolicy::from_env().threads;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int value = 0;
    if (arg == "--threads" && i + 1 < argc) {
      value = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = std::atoi(arg.data() + 10);
    } else {
      std::fprintf(stderr, "unknown argument: %.*s (supported: --threads N)\n",
                   static_cast<int>(arg.size()), arg.data());
      std::exit(2);
    }
    if (value < 1) {
      std::fprintf(stderr, "--threads: need a positive integer\n");
      std::exit(2);
    }
    options().threads = value;
  }
  if (options().threads > 1) {
    std::printf("# engine: parallel round schedule, threads = %d\n",
                options().threads);
  }
}

/// Uniform random `bits`-bit magnitudes (top bit set so every input has the
/// same length): the adversarial-spread workload -- prefix search gets no
/// help from shared honest prefixes.
inline std::vector<BigInt> spread_inputs(int n, std::size_t bits,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BigInt> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(BigNat::pow2(bits - 1) + rng.nat_below_pow2(bits - 1),
                        false);
  }
  return inputs;
}

/// Sensor-style workload: values share all but the low `spread_bits` bits.
inline std::vector<BigInt> clustered_inputs(int n, std::size_t bits,
                                            std::size_t spread_bits,
                                            std::uint64_t seed) {
  Rng rng(seed);
  const BigNat base = BigNat::pow2(bits - 1) + rng.nat_below_pow2(bits - 1);
  std::vector<BigInt> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(base + rng.nat_below_pow2(spread_bits), false);
  }
  return inputs;
}

struct Cost {
  std::uint64_t bits = 0;
  std::size_t rounds = 0;
};

/// Runs `proto` on `inputs` with `byz_count` corrupted parties of `kind`
/// (spread over the id space) and returns the honest cost. Aborts the
/// process on any property violation: a bench must never report numbers
/// from a broken run.
inline Cost measure(const ca::CAProtocol& proto, int n,
                    const std::vector<BigInt>& inputs,
                    int byz_count = 0,
                    adv::Kind kind = adv::Kind::kSilent) {
  ca::SimConfig cfg;
  cfg.n = n;
  cfg.t = max_t(n);
  cfg.inputs = inputs;
  for (int i = 0; i < byz_count; ++i) {
    cfg.corruptions.push_back({(i * n) / std::max(1, byz_count) + 1, kind});
  }
  cfg.extreme_low = BigInt(0);
  cfg.extreme_high = BigInt(BigNat::pow2(24), false);
  cfg.threads = options().threads;
  const ca::SimResult r = ca::run_simulation(proto, cfg);
  if (!r.agreement() || !r.convex_validity(cfg.inputs)) {
    std::fprintf(stderr, "FATAL: property violation in bench run (%s)\n",
                 proto.name().c_str());
    std::abort();
  }
  return {r.stats.honest_bits(), r.stats.rounds};
}

/// Wall-clock of one measured run at an explicit thread count.
struct TimedCost {
  Cost cost;
  double seconds = 0;
};

inline TimedCost measure_timed(const ca::CAProtocol& proto, int n,
                               const std::vector<BigInt>& inputs, int threads,
                               int byz_count = 0,
                               adv::Kind kind = adv::Kind::kSilent) {
  const int saved = options().threads;
  options().threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const Cost cost = measure(proto, n, inputs, byz_count, kind);
  const auto stop = std::chrono::steady_clock::now();
  options().threads = saved;
  return {cost, std::chrono::duration<double>(stop - start).count()};
}

/// Runs `proto` serial and with `threads` workers on the same workload and
/// prints the wall-clock speedup. Aborts if the metered bits or rounds
/// differ -- the parallel schedule must be observationally identical.
inline void report_parallel_speedup(const ca::CAProtocol& proto, int n,
                                    const std::vector<BigInt>& inputs,
                                    int threads, int byz_count = 0) {
  const TimedCost serial = measure_timed(proto, n, inputs, 1, byz_count);
  const TimedCost parallel =
      measure_timed(proto, n, inputs, threads, byz_count);
  if (serial.cost.bits != parallel.cost.bits ||
      serial.cost.rounds != parallel.cost.rounds) {
    std::fprintf(stderr,
                 "FATAL: parallel schedule changed metered cost (%s)\n",
                 proto.name().c_str());
    std::abort();
  }
  std::printf("%s n=%d: serial %.3fs, %d threads %.3fs -> speedup %.2fx "
              "(bits %s unchanged)\n",
              proto.name().c_str(), n, serial.seconds, threads,
              parallel.seconds, serial.seconds / parallel.seconds,
              human_bits(serial.cost.bits).c_str());
}

/// Least-squares slope of log(y) against log(x): the empirical exponent.
inline double loglog_slope(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  const std::size_t m = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double dm = static_cast<double>(m);
  return (dm * sxy - sx * sy) / (dm * sxx - sx * sx);
}

/// Runs a sub-protocol body (ctx, id) -> void at every party and returns
/// the run's cost stats. Used by the benches that measure building blocks
/// (Pi_BA+, Pi_lBA+, FixedLengthCA variants) below the CAProtocol level.
inline net::RunStats run_subprotocol(
    int n, int t,
    const std::function<void(net::PartyContext&, int)>& body) {
  net::SyncNetwork net(n, t);
  net.set_exec_policy(net::ExecPolicy::parallel(options().threads));
  for (int id = 0; id < n; ++id) {
    net.set_honest(id, [&body, id](net::PartyContext& ctx) { body(ctx, id); });
  }
  return net.run();
}

inline std::string human_bits(std::uint64_t bits) {
  char buf[32];
  if (bits >= 8ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f Mbit",
                  static_cast<double>(bits) / (1024.0 * 1024.0));
  } else if (bits >= 8ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f Kbit",
                  static_cast<double>(bits) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%llu bit",
                  static_cast<unsigned long long>(bits));
  }
  return buf;
}

}  // namespace coca::bench
