// T6 -- ablation: bit search (Section 3) vs block search (Section 4) on
// very long inputs.
//
// Claim under test: both variants move O(l n) + poly(n, kappa) bits, but
// FixedLengthCA runs O(log l) Pi_lBA+ iterations while FixedLengthCABlocks
// runs O(log n^2) iterations plus one O(n)-round HighCostCA block step --
// for l >> n^2 the block variant needs fewer BA iterations (fewer rounds),
// which is exactly why Section 4 exists.
#include "bench_support.h"

#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/fixed_length_ca.h"
#include "ca/fixed_length_ca_blocks.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int n = 7;
  const int t = max_t(n);
  const std::size_t n2 = static_cast<std::size_t>(n) * n;

  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::BAKit kit{&bin, &tc};
  const ca::FixedLengthCA bit_version(kit);
  const ca::FixedLengthCABlocks block_version(kit);

  std::printf("# T6: FixedLengthCA (bit search) vs FixedLengthCABlocks "
              "(n^2-block search), n = %d, t = %d\n",
              n, t);
  const auto table = [&](const char* workload, const bool clustered) {
    std::printf("\n## workload: %s\n", workload);
    std::printf("%-10s %-16s %-10s %-16s %-10s %-18s\n", "l(bits)",
                "bits:bit", "rounds", "bits:block", "rounds",
                "round savings");
    Rng rng(88);
    for (std::size_t ell : {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
      ell = (ell / n2) * n2;  // block variant needs a multiple of n^2
      std::vector<Bitstring> inputs;
      const Bitstring head = rng.bits(ell - 16);
      for (int i = 0; i < n; ++i) {
        if (clustered) {
          Bitstring v = head;
          v.append(rng.bits(16));
          inputs.push_back(std::move(v));
        } else {
          inputs.push_back(rng.bits(ell));
        }
      }
      const auto run_with = [&](const auto& proto) {
        return run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
          (void)proto.run(ctx, ell, inputs[static_cast<std::size_t>(id)]);
        });
      };
      const auto bits_run = run_with(bit_version);
      const auto blocks_run = run_with(block_version);
      std::printf("%-10zu %-16s %-10zu %-16s %-10zu %-18.2f\n", ell,
                  human_bits(bits_run.honest_bits()).c_str(), bits_run.rounds,
                  human_bits(blocks_run.honest_bits()).c_str(),
                  blocks_run.rounds,
                  static_cast<double>(bits_run.rounds) /
                      static_cast<double>(blocks_run.rounds));
    }
  };
  table("clustered (all but 16 tail bits shared)", true);
  table("spread (uniform random values)", false);
  std::printf("\n(theory: clustered -- both variants pay Theta(l n) "
              "distribution bits, the block variant in fewer, larger "
              "Pi_lBA+ iterations, so it saves rounds at similar bits. "
              "Spread -- every Pi_lBA+ returns bottom, so the bit variant "
              "stays poly-only while the block variant still pays "
              "AddLastBlock's O(l/n^2 * n^3) = O(l n): the bits/rounds "
              "trade-off Section 4 accepts for round efficiency.)\n");
  return 0;
}
