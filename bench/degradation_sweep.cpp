// degradation_sweep: the graceful-degradation campaign at the t < n/3
// boundary (the T-degrade table in EXPERIMENTS.md).
//
//   degradation_sweep                       # full campaign at n = 7
//   degradation_sweep --n 4 --fmax 2        # CI smoke variant
//   degradation_sweep --out degrade.json    # machine-readable artifact
//   degradation_sweep --md table.md         # EXPERIMENTS.md table
//
// Exit status: 0 = every cell met its expectation (invariants hold while
// f <= t, graceful structured degradation beyond), 1 = some cell failed,
// 2 = usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "adversary/degradation.h"

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "degradation_sweep: " << error << "\n\n";
  std::cerr <<
      "usage: degradation_sweep [options]\n"
      "  --n N              network size (default 7; t = floor((n-1)/3))\n"
      "  --ell L            input bit-length scale (default 16)\n"
      "  --fmax F           highest charged-party count swept "
      "(default t + 2)\n"
      "  --protocols A,B    targets to sweep (default: all)\n"
      "  --threads K        ExecPolicy window for every run (default 0)\n"
      "  --seed S           honest-workload seed\n"
      "  --out FILE         write the campaign JSON artifact\n"
      "  --md FILE          write the markdown T-degrade table\n";
  std::exit(2);
}

std::string arg_value(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) usage("missing value for " + flag);
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  coca::adv::DegradationConfig cfg;
  std::string out_path;
  std::string md_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--n") {
        cfg.n = std::stoi(arg_value(argc, argv, i, arg));
      } else if (arg == "--ell") {
        cfg.ell = std::stoull(arg_value(argc, argv, i, arg));
      } else if (arg == "--fmax") {
        cfg.f_max = std::stoi(arg_value(argc, argv, i, arg));
      } else if (arg == "--protocols") {
        std::stringstream ss(arg_value(argc, argv, i, arg));
        std::string item;
        while (std::getline(ss, item, ',')) {
          if (!item.empty()) cfg.protocols.push_back(item);
        }
      } else if (arg == "--threads") {
        cfg.threads = std::stoi(arg_value(argc, argv, i, arg));
      } else if (arg == "--seed") {
        cfg.input_seed = std::stoull(arg_value(argc, argv, i, arg));
      } else if (arg == "--out") {
        out_path = arg_value(argc, argv, i, arg);
      } else if (arg == "--md") {
        md_path = arg_value(argc, argv, i, arg);
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad value for " + arg);
    } catch (const std::out_of_range&) {
      usage("bad value for " + arg);
    }
  }

  try {
    const auto report = coca::adv::run_degradation_campaign(cfg);
    for (const auto& row : report.rows) {
      std::cout << row.protocol << " " << coca::adv::to_string(row.kind)
                << " f=" << row.f << (row.hold_required ? "" : " (>t)")
                << ": "
                << (!row.passed()          ? "FAIL"
                    : row.hold_required    ? "hold"
                    : row.invariants_held  ? "hold (not required)"
                                           : "graceful degradation")
                << " [rounds=" << row.rounds << ", bits=" << row.honest_bits
                << "]\n";
      for (const auto& v : row.violations) {
        std::cout << "    " << (row.passed() ? "observed: " : "violation: ")
                  << v << "\n";
      }
    }
    std::cout << "campaign: " << report.rows.size() << " cells at n="
              << report.config.n << " t=" << report.t << ", "
              << report.failures() << " failed\n";
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "degradation_sweep: cannot write " << out_path << "\n";
        return 2;
      }
      out << coca::adv::degradation_json(report);
    }
    if (!md_path.empty()) {
      std::ofstream md(md_path);
      if (!md) {
        std::cerr << "degradation_sweep: cannot write " << md_path << "\n";
        return 2;
      }
      md << coca::adv::degradation_markdown(report);
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "degradation_sweep: " << e.what() << "\n";
    return 2;
  }
}
