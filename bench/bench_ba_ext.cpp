// T4 -- long-message BA: Pi_lBA+ (Theorem 1) vs the Turpin-Coan baseline.
//
// Claim under test: BITS(Pi_lBA+) = O(l n + kappa n^2 log n) + BITS_k(Pi_BA)
// against Turpin-Coan's O(l n^2); at fixed n the ratio TC/Pi_lBA+ should
// approach ~n * (k / l-share overhead) as l grows, and the per-party,
// per-bit cost of Pi_lBA+ should flatten to a constant.
#include "bench_support.h"

#include "ba/long_ba_plus.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::BAKit kit{&bin, &tc};
  const ba::LongBAPlus lba(kit);

  std::printf("# T4a: BA for long messages, bits vs l (n = 10, t = 3, all "
              "parties share the input)\n");
  std::printf("%-10s %-16s %-18s %-8s\n", "l(bits)", "Pi_lBA+", "TurpinCoan",
              "ratio");
  Rng rng(55);
  for (const std::size_t ell :
       {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
    const Bytes value = rng.bytes(ell / 8);
    const auto ext = run_subprotocol(
        10, 3, [&](net::PartyContext& ctx, int) { (void)lba.run(ctx, value); });
    const auto naive = run_subprotocol(10, 3, [&](net::PartyContext& ctx, int) {
      (void)tc.run(ctx, value);
    });
    std::printf("%-10zu %-16s %-18s %-8.2f\n", ell,
                human_bits(ext.honest_bits()).c_str(),
                human_bits(naive.honest_bits()).c_str(),
                static_cast<double>(naive.honest_bits()) /
                    static_cast<double>(ext.honest_bits()));
  }

  std::printf("\n# T4b: bits vs n (l = 2^16)\n");
  std::printf("%-5s %-16s %-18s %-8s %-20s\n", "n", "Pi_lBA+", "TurpinCoan",
              "ratio", "Pi_lBA+ bits/(l*n)");
  const std::size_t ell = 1u << 16;
  const Bytes value = rng.bytes(ell / 8);
  for (const int n : {4, 7, 10, 13, 16, 19, 25, 31}) {
    const int t = max_t(n);
    const auto ext = run_subprotocol(
        n, t, [&](net::PartyContext& ctx, int) { (void)lba.run(ctx, value); });
    const auto naive = run_subprotocol(n, t, [&](net::PartyContext& ctx, int) {
      (void)tc.run(ctx, value);
    });
    std::printf("%-5d %-16s %-18s %-8.2f %-20.2f\n", n,
                human_bits(ext.honest_bits()).c_str(),
                human_bits(naive.honest_bits()).c_str(),
                static_cast<double>(naive.honest_bits()) /
                    static_cast<double>(ext.honest_bits()),
                static_cast<double>(ext.honest_bits()) /
                    (static_cast<double>(ell) * n));
  }
  std::printf("\n(theory: T4a ratio grows toward ~n * 2/3; T4b Pi_lBA+ "
              "bits/(l*n) flattens while the ratio grows with n)\n");
  return 0;
}
