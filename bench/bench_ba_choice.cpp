// Ablation: the assumed Pi_BA instantiation.
//
// The paper treats Pi_BA as a black box; its cost appears as the additive
// O(log n) * BITS_kappa(Pi_BA) term. We compare two plain-model
// deterministic instantiations inside the full Pi_Z stack:
//   (a) Turpin-Coan over binary Phase-King: kappa-bit BA at
//       O(kappa n^2 + n^3) bits (the default),
//   (b) multivalued Phase-King directly: O(kappa n^3) bits.
// The l-dependent term is identical by construction, so the gap isolates
// exactly the poly(n, kappa) overhead the choice of Pi_BA controls.
#include "bench_support.h"

#include "ba/phase_king.h"
#include "ba/turpin_coan.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::PhaseKingMultivalued mvpk;

  struct Variant {
    const char* name;
    ba::BAKit kit;
  };
  const Variant variants[] = {
      {"TC-over-PhaseKing", {&bin, &tc}},
      {"Multivalued-PhaseKing", {&bin, &mvpk}},
  };

  const std::size_t ell = 1u << 14;
  std::printf("# Ablation: Pi_BA instantiation inside Pi_Z (l = %zu bits, "
              "spread inputs)\n",
              ell);
  std::printf("%-5s", "n");
  for (const auto& v : variants) std::printf(" %-24s", v.name);
  std::printf(" %s\n", "overhead(b/a)");

  for (const int n : {4, 7, 10, 13, 16, 19}) {
    const int t = max_t(n);
    const auto inputs = spread_inputs(n, ell, 12000 + static_cast<unsigned>(n));
    std::uint64_t bits[2] = {};
    for (std::size_t v = 0; v < 2; ++v) {
      const ca::PiZ pi_z(variants[v].kit);
      const auto stats = run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
        (void)pi_z.run(ctx, inputs[static_cast<std::size_t>(id)]);
      });
      bits[v] = stats.honest_bits();
    }
    std::printf("%-5d %-24s %-24s %.2f\n", n, human_bits(bits[0]).c_str(),
                human_bits(bits[1]).c_str(),
                static_cast<double>(bits[1]) / static_cast<double>(bits[0]));
  }
  std::printf("\n(theory: the gap grows with n -- direct multivalued "
              "Phase-King pays kappa-bit values in every universal exchange "
              "of every one of its t+1 phases)\n");
  return 0;
}
