// F2 -- where Pi_Z's bits go: per-phase breakdown over l.
//
// Claim under test: the prefix search (FindPrefix/FindPrefixBlocks, i.e.
// the Pi_lBA+ invocations) carries essentially all of the l-dependent
// cost; AddLastBit/AddLastBlock and GetOutput stay O(poly(n)) regardless of
// l; the distributing step inside Pi_lBA+ accounts for the O(l n) term.
//
// Attribution comes from the observability layer: each run carries an
// obs::Tracer in canonical (timing-free) mode, the inclusive per-phase
// numbers are read off the phase span tree, and the leaf breakdown
// (RunStats::phase_breakdown) is checked to sum exactly to honest_bits --
// so the table cannot silently drift from what the engine metered.
#include "bench_support.h"
#include "obs/obs.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int n = 10;
  const int t = max_t(n);
  const ca::ConvexAgreement pi_z;

  const auto table = [&](const char* workload, const auto& make_inputs) {
    std::printf("\n## workload: %s\n", workload);
    std::printf("%-10s %-12s %-14s %-14s %-14s %-12s %-12s\n", "l(bits)",
                "total", "prefix-search", "lBA+ total", "lBA+ distrib",
                "last-unit", "GetOutput");
    for (const std::size_t ell : {1u << 10, 1u << 13, 1u << 16, 1u << 18}) {
      obs::Tracer tracer(obs::Tracer::Options{/*timing=*/false});
      ca::SimConfig cfg;
      cfg.n = n;
      cfg.t = t;
      cfg.inputs = make_inputs(ell);
      cfg.tracer = &tracer;
      const ca::SimResult r = ca::run_simulation(pi_z, cfg);
      // Inclusive per-phase bytes off the span tree; identical to the
      // legacy RunStats::honest_bytes_by_phase accounting.
      const auto phases = tracer.inclusive_bytes_by_name();
      const auto get = [&](const char* key) -> std::uint64_t {
        const auto it = phases.find(key);
        return it == phases.end() ? 0 : it->second * 8;
      };
      // Exactness check on the leaf attribution: every honest byte lands
      // in exactly one leaf phase.
      std::uint64_t leaf_sum = 0;
      for (const auto& [phase, bytes] : r.stats.phase_breakdown) {
        leaf_sum += bytes;
      }
      ensure(leaf_sum == r.stats.honest_bytes,
             "bench_breakdown: leaf phase_breakdown does not sum to "
             "honest_bytes");
      const std::uint64_t search =
          get("FindPrefix") + get("FindPrefixBlocks");
      const std::uint64_t last_unit =
          get("AddLastBit") + get("AddLastBlock");
      std::printf("%-10zu %-12s %-14s %-14s %-14s %-12s %-12s\n", ell,
                  human_bits(r.stats.honest_bits()).c_str(),
                  human_bits(search).c_str(), human_bits(get("lBA+")).c_str(),
                  human_bits(get("lBA+/distribute")).c_str(),
                  human_bits(last_unit).c_str(),
                  human_bits(get("GetOutput")).c_str());
    }
  };
  table("clustered (shared 'sensor' prefix, 24 spread bits)",
        [&](std::size_t ell) { return clustered_inputs(n, ell, 24, 7500 + ell); });
  table("spread (uniform random values)",
        [&](std::size_t ell) { return spread_inputs(n, ell, 7000 + ell); });
  std::printf("\n(theory: both carry Theta(l n) + poly bits, through "
              "different doors. Clustered inputs agree inside Pi_lBA+, so "
              "the l-term flows through the distributing step; spread inputs "
              "drive every Pi_lBA+ to bottom, so the search stays cheap and "
              "the l-term flows through AddLastBlock's HighCostCA on one "
              "l/n^2-bit block = O(l/n^2 * n^3) = O(l n). Last-unit and "
              "GetOutput stay flat in the clustered case.)\n");
  return 0;
}
