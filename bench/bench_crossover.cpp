// F1 -- crossover: where Pi_Z starts to win, as a function of l and n.
//
// Claim under test: the paper's optimality threshold l = Omega(kappa n
// log^2 n). For each n we sweep l and report the cost ratio
// baseline/Pi_Z; the first l where the ratio exceeds 1 (the crossover l*)
// should grow with n roughly like n log^2 n, and the ratio should keep
// growing with l afterwards (approaching ~n against the O(l n^2) baseline).
#include "bench_support.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int ns[] = {4, 7, 13};
  const std::size_t ells[] = {1u << 6,  1u << 8,  1u << 9, 1u << 10,
                              1u << 12, 1u << 14, 1u << 16, 1u << 18};

  const ca::ConvexAgreement pi_z;
  const ca::DefaultBAStack stack;
  const ca::HighCostCAProtocol high_cost(stack.kit());

  std::printf("# F1: cost ratio HighCostCA / PiZ over l (ratio > 1 means "
              "PiZ wins; crossover l* grows with n)\n");
  std::printf("%-10s", "l(bits)");
  for (const int n : ns) std::printf(" n=%-10d", n);
  std::printf("\n");

  std::vector<std::size_t> crossover(std::size(ns), 0);
  for (const std::size_t ell : ells) {
    std::printf("%-10zu", ell);
    for (std::size_t i = 0; i < std::size(ns); ++i) {
      const int n = ns[i];
      // Keep the cubic baseline affordable.
      if (static_cast<double>(ell) * n * n * n > 3e10) {
        std::printf(" %-11s", "-");
        continue;
      }
      const auto inputs = spread_inputs(n, ell, 3000 + ell + static_cast<unsigned>(n));
      const Cost ours = measure(pi_z, n, inputs, max_t(n));
      const Cost base = measure(high_cost, n, inputs, max_t(n));
      const double ratio =
          static_cast<double>(base.bits) / static_cast<double>(ours.bits);
      if (ratio > 1.0 && crossover[i] == 0) crossover[i] = ell;
      std::printf(" %-11.2f", ratio);
    }
    std::printf("\n");
  }

  std::printf("\ncrossover l* (first swept l with ratio > 1):");
  for (std::size_t i = 0; i < std::size(ns); ++i) {
    if (crossover[i] != 0) {
      std::printf("  n=%d: %zu", ns[i], crossover[i]);
    } else {
      std::printf("  n=%d: > sweep", ns[i]);
    }
  }
  std::printf("\n(theory: l* = Theta(kappa n log^2 n) against the cubic "
              "baseline's l n^3 vs our l n + kappa n^2 log^2 n)\n");
  return 0;
}
