// bench_throughput: instance-sharded engine throughput (the T-throughput
// table in EXPERIMENTS.md).
//
//   bench_throughput                          # K=64, n=7, ell=2^14 sweep
//                                             # over workers {1, 2, 4, 8}
//   bench_throughput --smoke                  # CI probe: K=8, n=4, ell=2^12
//   bench_throughput --threads 8              # one worker count only
//   bench_throughput --out BENCH_PR6.json     # coca-bench-v1 artifact
//   bench_throughput --per-instance-out f.json# deterministic per-instance
//                                             # metrics (no timing, no meta)
//
// Every sweep runs the SAME K cases at each worker count; the per-instance
// metrics (honest bits/messages/rounds, leaf phase breakdown) must be
// identical across worker counts -- the binary exits 1 if they are not, and
// the CI throughput-smoke job additionally byte-diffs the
// --per-instance-out files of a serial and an 8-worker invocation. Only
// wall-clock throughput (instances/sec, honest bits/sec) may move.
//
// The main JSON keeps the host-dependent fields ("meta", with the machine's
// core count, and the timed "throughput_entries") separable: "meta" is a
// single line so the established `grep -v '"meta"'` byte-diff pattern
// applies.
//
// Exit status: 0 = success, 1 = determinism breach or run failure,
// 2 = usage error.
#include <cstdio>
#include <fstream>
#include <map>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"

namespace {

using namespace coca;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "bench_throughput: " << error << "\n\n";
  std::cerr
      << "usage: bench_throughput [options]\n"
         "  --smoke                fast CI probe (K=8, n=4, ell=4096)\n"
         "  --threads W            run one worker count instead of the\n"
         "                         {1, 2, 4, 8} sweep\n"
         "  --instances K          concurrent instances (default 64)\n"
         "  --n N                  network size (default 7)\n"
         "  --ell L                input bit-length (default 16384)\n"
         "  --protocol P           protocol target (default PiZ)\n"
         "  --seed S               base input seed (default 0x7B06)\n"
         "  --out FILE             write the coca-bench-v1 JSON to FILE\n"
         "  --per-instance-out F   write deterministic per-instance metrics\n";
  std::exit(2);
}

struct Config {
  int instances = 64;
  int n = 7;
  std::size_t ell = std::size_t{1} << 14;
  std::string protocol = "PiZ";
  std::uint64_t seed = 0x7B06;
  std::vector<int> workers = {1, 2, 4, 8};
  bool smoke = false;
};

/// One worker count's timed row.
struct ThroughputRow {
  int workers = 0;
  double seconds = 0;
  std::uint64_t honest_bits = 0;
  std::uint64_t rounds = 0;
};

/// Schedule-independent per-instance snapshot: the fields the CI byte-diff
/// compares across worker counts.
struct InstanceRow {
  std::uint64_t honest_bits = 0;
  std::uint64_t honest_messages = 0;
  std::uint64_t rounds = 0;
  std::map<std::string, std::uint64_t> phase_bits;

  bool operator==(const InstanceRow&) const = default;
};

std::vector<adv::FuzzCase> build_cases(const Config& cfg) {
  std::vector<adv::FuzzCase> cases;
  for (int i = 0; i < cfg.instances; ++i) {
    adv::FuzzCase c;
    c.protocol = cfg.protocol;
    c.n = cfg.n;
    c.t = (cfg.n - 1) / 3;
    c.ell = cfg.ell;
    c.input_seed = cfg.seed + static_cast<std::uint64_t>(i);
    c.threads = 1;
    cases.push_back(std::move(c));
  }
  return cases;
}

std::vector<InstanceRow> snapshot(const engine::EngineReport& report) {
  std::vector<InstanceRow> rows;
  rows.reserve(report.instances.size());
  for (const engine::InstanceResult& res : report.instances) {
    InstanceRow row;
    row.honest_bits = res.outcome.stats.honest_bits();
    row.honest_messages = res.outcome.stats.honest_messages;
    row.rounds = res.outcome.stats.rounds;
    for (const auto& [phase, bytes] : res.outcome.stats.phase_breakdown) {
      row.phase_bits[phase] = bytes * 8;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_json(std::ostream& os, const Config& cfg,
                const std::vector<ThroughputRow>& rows) {
  os << "{\n";
  os << "  \"schema\": \"coca-bench-v1\",\n";
  os << "  \"mode\": \"" << (cfg.smoke ? "throughput_smoke" : "throughput")
     << "\",\n";
  // Host-dependent context on one line so the grep -v '"meta"' byte-diff
  // pattern strips it alongside the timing-free comparisons.
  os << "  \"meta\": {\"host_cores\": " << std::thread::hardware_concurrency()
     << ", \"instances\": " << cfg.instances << ", \"protocol\": \""
     << cfg.protocol << "\", \"n\": " << cfg.n
     << ", \"t\": " << (cfg.n - 1) / 3 << ", \"ell_bits\": " << cfg.ell
     << ", \"seed\": " << cfg.seed << "},\n";
  os << "  \"throughput_entries\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"bench\": \"throughput\", \"workers\": %d, "
        "\"seconds\": %.6f, \"instances_per_sec\": %.3f, "
        "\"honest_bits\": %llu, \"honest_bits_per_sec\": %.0f, "
        "\"rounds\": %llu}%s",
        r.workers, r.seconds, cfg.instances / r.seconds,
        static_cast<unsigned long long>(r.honest_bits),
        static_cast<double>(r.honest_bits) / r.seconds,
        static_cast<unsigned long long>(r.rounds),
        i + 1 < rows.size() ? ",\n" : "\n");
    os << buf;
  }
  os << "  ]\n}\n";
}

/// The deterministic companion file: per-instance metrics only, no meta, no
/// timing. Byte-identical across worker counts by construction (and the CI
/// smoke job cmp(1)s a serial vs an 8-worker run to prove it).
void write_per_instance_json(std::ostream& os, const Config& cfg,
                             const std::vector<InstanceRow>& rows) {
  os << "{\n";
  os << "  \"schema\": \"coca-bench-v1\",\n";
  os << "  \"mode\": \"throughput_per_instance\",\n";
  os << "  \"instances\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const InstanceRow& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"instance\": %zu, \"protocol\": \"%s\", "
                  "\"honest_bits\": %llu, \"honest_messages\": %llu, "
                  "\"rounds\": %llu, \"phase_bits\": {",
                  i, cfg.protocol.c_str(),
                  static_cast<unsigned long long>(r.honest_bits),
                  static_cast<unsigned long long>(r.honest_messages),
                  static_cast<unsigned long long>(r.rounds));
    os << buf;
    bool first = true;
    for (const auto& [phase, bits] : r.phase_bits) {
      os << (first ? "" : ", ") << "\"" << phase << "\": " << bits;
      first = false;
    }
    os << "}}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool threads_set = false;
  std::string out_path;
  std::string per_instance_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--smoke") {
        cfg.smoke = true;
      } else if (arg == "--threads") {
        const int w = std::stoi(next());
        if (w < 1) usage("--threads must be >= 1");
        cfg.workers = {w};
        threads_set = true;
      } else if (arg == "--instances") {
        cfg.instances = std::stoi(next());
        if (cfg.instances < 1) usage("--instances must be >= 1");
      } else if (arg == "--n") {
        cfg.n = std::stoi(next());
      } else if (arg == "--ell") {
        cfg.ell = std::stoull(next());
      } else if (arg == "--protocol") {
        cfg.protocol = next();
      } else if (arg == "--seed") {
        cfg.seed = std::stoull(next());
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--per-instance-out") {
        per_instance_path = next();
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad value for " + arg);
    } catch (const std::out_of_range&) {
      usage("bad value for " + arg);
    }
  }
  if (cfg.smoke) {
    cfg.instances = 8;
    cfg.n = 4;
    cfg.ell = std::size_t{1} << 12;
    if (!threads_set) cfg.workers = {1};
  }

  const std::vector<adv::FuzzCase> cases = build_cases(cfg);
  std::vector<ThroughputRow> rows;
  std::vector<InstanceRow> reference;
  try {
    for (const int workers : cfg.workers) {
      engine::EngineOptions opt;
      opt.workers = workers;
      opt.record_transcripts = false;  // equivalence is tier-1's job
      const engine::EngineReport report = engine::Engine(opt).run(cases);
      ThroughputRow row;
      row.workers = workers;
      row.seconds = report.seconds;
      row.honest_bits = report.honest_bytes * 8;
      row.rounds = report.rounds;
      rows.push_back(row);
      const std::vector<InstanceRow> snap = snapshot(report);
      if (reference.empty()) {
        reference = snap;
      } else if (snap != reference) {
        std::cerr << "bench_throughput: FAIL: per-instance metrics at "
                  << workers << " workers differ from the first sweep point; "
                  << "the engine's schedule-independence invariant broke\n";
        return 1;
      }
      std::cerr << "throughput " << cfg.protocol << " K=" << cfg.instances
                << " n=" << cfg.n << " ell=" << cfg.ell
                << " workers=" << workers << ": " << row.seconds << "s, "
                << cfg.instances / row.seconds << " instances/sec, "
                << static_cast<double>(row.honest_bits) / row.seconds
                << " honest bits/sec\n";
    }
  } catch (const std::exception& ex) {
    std::cerr << "bench_throughput: " << ex.what() << "\n";
    return 1;
  }

  if (out_path.empty()) {
    write_json(std::cout, cfg, rows);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_throughput: cannot write " << out_path << "\n";
      return 1;
    }
    write_json(out, cfg, rows);
  }
  if (!per_instance_path.empty()) {
    std::ofstream out(per_instance_path);
    if (!out) {
      std::cerr << "bench_throughput: cannot write " << per_instance_path
                << "\n";
      return 1;
    }
    write_per_instance_json(out, cfg, reference);
  }
  return 0;
}
