// T7 -- adversarial impact on honest communication.
//
// Claim under test (the paper's motivation): in prior CA protocols the
// communication complexity is "adversarially chosen" because honest parties
// forward byzantine payloads. In Pi_Z the honest parties never forward
// unverified long payloads, so honest bits must stay essentially flat
// across the whole adversary battery (spam included), and rounds are
// adversary-independent by construction.
#include "bench_support.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int n = 13;
  const int t = max_t(n);
  const std::size_t ell = 1u << 14;
  const ca::ConvexAgreement pi_z;

  const auto inputs = clustered_inputs(n, ell, 24, 9000);
  const Cost clean = measure(pi_z, n, inputs, 0);
  // Corrupted parties send no honest bytes, so compare *per honest party*.
  const double clean_pp = static_cast<double>(clean.bits) / n;

  std::printf("# T7: Pi_Z honest cost vs adversary (n = %d, t = %d, l = %zu, "
              "clustered inputs; baseline row = no corruption; the ratio "
              "compares bits per honest party)\n",
              n, t, ell);
  std::printf("%-14s %-16s %-10s %-22s\n", "adversary", "honest bits",
              "rounds", "bits/honest vs clean");
  std::printf("%-14s %-16s %-10zu %-22s\n", "(none)",
              human_bits(clean.bits).c_str(), clean.rounds, "1.00");

  for (const adv::Kind kind : adv::kAllKinds) {
    const Cost c = measure(pi_z, n, inputs, t, kind);
    const double per_party = static_cast<double>(c.bits) / (n - t);
    std::printf("%-14s %-16s %-10zu %-22.2f\n",
                std::string(adv::to_string(kind)).c_str(),
                human_bits(c.bits).c_str(), c.rounds, per_party / clean_pp);
  }
  std::printf("\n(theory: every ratio stays near 1; small deviations come "
              "from data-dependent branch choices in the prefix search, not "
              "from forwarding adversarial bytes)\n");
  return 0;
}
