// Cryptographic-setup regime (paper Section 8's second open problem):
// t < n/2 CA via Dolev-Strong authenticated broadcast.
//
// Measures (a) one Dolev-Strong instance across t and l (the t+1-round,
// O(n^2 (l + n sigma)) signature-chain cost), and (b) the signed
// broadcast-everything CA against Pi_Z on the same inputs: double the
// resilience, at a communication price that grows ~n^2 faster -- the gap a
// future communication-optimal t < n/2 protocol would close.
#include "bench_support.h"

#include "ba/dolev_strong.h"
#include "ca/signed_ca.h"

namespace {

using namespace coca;

std::uint64_t ds_bits(int n, int t, std::size_t len) {
  const crypto::SimulatedPki pki(n, 5);
  const ba::DolevStrong ds(pki);
  net::SyncNetwork net(n, t);
  Rng rng(len);
  const Bytes value = rng.bytes(len);
  for (int id = 0; id < n; ++id) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      const crypto::Signer signer = pki.signer(id);
      (void)ds.run(ctx, signer, 0,
                   id == 0 ? std::optional<Bytes>(value) : std::nullopt);
    });
  }
  return net.run().honest_bits();
}

bench::Cost signed_ca_cost(int n, std::size_t bits_len,
                           const std::vector<BigInt>& inputs) {
  const int t = (n - 1) / 2;
  const crypto::SimulatedPki pki(n, 5);
  const ca::SignedBroadcastCA ca(pki);
  net::SyncNetwork net(n, t);
  std::vector<std::optional<BigInt>> outputs(n);
  for (int id = 0; id < n; ++id) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      const crypto::Signer signer = pki.signer(id);
      outputs[static_cast<std::size_t>(id)] =
          ca.run(ctx, signer, inputs[static_cast<std::size_t>(id)]);
    });
  }
  const net::RunStats stats = net.run();
  (void)bits_len;
  return {stats.honest_bits(), stats.rounds};
}

}  // namespace

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca::bench;

  std::printf("# Signed-a: Dolev-Strong broadcast, honest bits "
              "(sigma = 256-bit signatures)\n");
  std::printf("%-12s %-14s %-14s %-14s\n", "value bytes", "n=4,t=1",
              "n=7,t=3", "n=13,t=6");
  for (const std::size_t len : {16u, 1024u, 16384u}) {
    std::printf("%-12zu %-14s %-14s %-14s\n", len,
                human_bits(ds_bits(4, 1, len)).c_str(),
                human_bits(ds_bits(7, 3, len)).c_str(),
                human_bits(ds_bits(13, 6, len)).c_str());
  }
  std::printf("(theory: O(n^2 l + n^3 sigma); note t can exceed n/3)\n\n");

  std::printf("# Signed-b: CA regimes -- SignedBroadcastCA (t<n/2, PKI) vs "
              "Pi_Z (t<n/3, plain model), l = 4096 bits\n");
  std::printf("%-5s %-22s %-20s %-10s\n", "n", "Signed t<n/2 (bits)",
              "PiZ t<n/3 (bits)", "ratio");
  const coca::ca::ConvexAgreement pi_z;
  for (const int n : {5, 7, 9, 13}) {
    const auto inputs = spread_inputs(n, 4096, 500 + static_cast<unsigned>(n));
    const Cost s = signed_ca_cost(n, 4096, inputs);
    const Cost z = measure(pi_z, n, inputs, 0);
    std::printf("%-5d %-22s %-20s %-10.2f\n", n, human_bits(s.bits).c_str(),
                human_bits(z.bits).c_str(),
                static_cast<double>(s.bits) / static_cast<double>(z.bits));
  }
  std::printf("\n(claims: the signed regime doubles resilience but costs "
              "O(l n^2 + n^3 sigma) vs Pi_Z's O(l n + poly); making the "
              "t < n/2 regime communication-optimal is open -- paper §8)\n");
  return 0;
}
