// T5 -- Pi_BA+ (Theorem 6): the cost of Intrusion Tolerance and Bounded
// Pre-Agreement on kappa-bit values.
//
// Claim under test: BITS(Pi_BA+) = O(kappa n^2) + BITS_k(Pi_BA); the
// overhead over a single multivalued Pi_BA run is a small constant factor
// (three value broadcasts + at most 2 kappa-bit and 2 binary Pi_BA runs).
#include "bench_support.h"

#include "ba/ba_plus.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::BAKit kit{&bin, &tc};
  const ba::BAPlus bap(kit);

  std::printf("# T5: Pi_BA+ on kappa-bit values (kappa = 256) vs plain "
              "multivalued Pi_BA (Turpin-Coan instantiation)\n");
  std::printf("%-5s %-14s %-14s %-10s %-16s %-12s\n", "n", "Pi_BA+",
              "Pi_BA(kappa)", "overhead", "Pi_BA+/(k*n^2)", "rounds");

  Rng rng(66);
  const Bytes digest_like = rng.bytes(32);
  for (const int n : {4, 7, 10, 13, 16, 19, 25, 31, 40}) {
    const int t = max_t(n);
    // Worst-ish case: two honest camps, so both the a- and b-agreement
    // stages run in full.
    const auto plus = run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
      Bytes v = digest_like;
      v[0] = static_cast<std::uint8_t>(id % 2);
      (void)bap.run(ctx, v);
    });
    const auto plain = run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
      Bytes v = digest_like;
      v[0] = static_cast<std::uint8_t>(id % 2);
      (void)tc.run(ctx, v);
    });
    std::printf("%-5d %-14s %-14s %-10.2f %-16.3f %-12zu\n", n,
                human_bits(plus.honest_bits()).c_str(),
                human_bits(plain.honest_bits()).c_str(),
                static_cast<double>(plus.honest_bits()) /
                    static_cast<double>(plain.honest_bits()),
                static_cast<double>(plus.honest_bits()) /
                    (256.0 * n * n),
                plus.rounds);
  }
  std::printf("\n(theory: overhead a small constant; bits/(kappa n^2) "
              "bounded; rounds dominated by the 4 Pi_BA invocations)\n");
  return 0;
}
