// T2 -- honest communication vs l at fixed n.
//
// Claim under test: all three protocols are linear in l, but with slopes
// ~c*n (Pi_Z), ~c*n^2 (BroadcastTrimCA), ~c*n^3 (HighCostCA); in particular
// Pi_Z's cost per input bit per party approaches a constant, the paper's
// communication-optimality.
#include "bench_support.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int n = 13;
  const std::size_t ells[] = {1u << 10, 1u << 12, 1u << 14, 1u << 16,
                              1u << 18};

  const ca::ConvexAgreement pi_z;
  const ca::DefaultBAStack stack;
  const ca::BroadcastTrimCA broadcast(stack.kit());
  const ca::HighCostCAProtocol high_cost(stack.kit());

  std::printf("# T2: honest communication vs l (n = %d, t = %d, spread "
              "inputs, t garbage corruptions)\n",
              n, max_t(n));
  std::printf("%-10s %-16s %-18s %-16s %-14s\n", "l(bits)", "PiZ",
              "BroadcastTrim", "HighCostCA", "PiZ bits/(l*n)");

  std::vector<double> xs, ours, bc;
  for (const std::size_t ell : ells) {
    const auto inputs = spread_inputs(n, ell, 2000 + ell);
    const Cost a = measure(pi_z, n, inputs, max_t(n), adv::Kind::kGarbage);
    const Cost b =
        measure(broadcast, n, inputs, max_t(n), adv::Kind::kGarbage);
    const bool run_hc = ell <= (1u << 14);
    const Cost c = run_hc
                       ? measure(high_cost, n, inputs, max_t(n),
                                 adv::Kind::kGarbage)
                       : Cost{};
    xs.push_back(static_cast<double>(ell));
    ours.push_back(static_cast<double>(a.bits));
    bc.push_back(static_cast<double>(b.bits));
    std::printf("%-10zu %-16s %-18s %-16s %-14.2f\n", ell,
                human_bits(a.bits).c_str(), human_bits(b.bits).c_str(),
                run_hc ? human_bits(c.bits).c_str() : "-",
                static_cast<double>(a.bits) /
                    (static_cast<double>(ell) * n));
  }

  std::printf("\nempirical log-log slope in l:  PiZ=%.2f  Broadcast=%.2f   "
              "(theory: -> 1 as l grows)\n",
              loglog_slope(xs, ours), loglog_slope(xs, bc));
  return 0;
}
