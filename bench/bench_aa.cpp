// AA vs CA -- the related-work contrast (Section 1.1).
//
// Approximate Agreement ships every value to everyone each iteration
// (O(l n^2) bits per iteration, times log(D/eps) iterations), while the
// paper's CA reaches *exact* agreement in O(l n + kappa n^2 log^2 n) bits.
// This bench measures both sides: (a) AA's convergence and cost as epsilon
// shrinks, (b) the cost of exact agreement via Pi_Z on the same inputs.
#include "bench_support.h"

#include "aa/approximate_agreement.h"

int main(int argc, char** argv) {
  coca::bench::parse_args(argc, argv);
  using namespace coca;
  using namespace coca::bench;

  const int n = 10;
  const int t = max_t(n);
  const std::size_t ell = 1u << 14;
  const aa::SyncApproxAgreement approx;
  const ca::ConvexAgreement pi_z;

  // Honest values spread across a 2^24 window inside 2^ell magnitudes.
  const auto inputs = clustered_inputs(n, ell, 24, 11000);

  std::printf("# AA vs CA (n = %d, t = %d, l = %zu bits, honest spread "
              "2^24)\n\n",
              n, t, ell);
  std::printf("## Approximate Agreement: cost to reach epsilon\n");
  std::printf("%-14s %-10s %-16s %-10s\n", "epsilon", "iters", "honest bits",
              "rounds");
  for (const std::size_t eps_log : {20u, 16u, 12u, 8u, 4u, 0u}) {
    const std::size_t iters =
        aa::iterations_for(BigNat::pow2(24), BigNat::pow2(eps_log));
    const auto stats = run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
      (void)approx.run(ctx, inputs[static_cast<std::size_t>(id)], iters);
    });
    std::printf("2^%-12zu %-10zu %-16s %-10zu\n", eps_log, iters,
                human_bits(stats.honest_bits()).c_str(), stats.rounds);
  }

  // Validation-substrate ablation: hash-echo (2 rounds, values once +
  // kappa-bit echo vectors) vs full gradecast (3 rounds, values shipped
  // three times) per iteration.
  const aa::GradecastApproxAgreement graded;
  std::printf("\n## AA validation substrate at epsilon = 2^8\n");
  std::printf("%-14s %-16s %-10s\n", "substrate", "honest bits", "rounds");
  {
    const std::size_t iters = aa::iterations_for(BigNat::pow2(24), BigNat::pow2(8));
    const auto hash_echo = run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
      (void)approx.run(ctx, inputs[static_cast<std::size_t>(id)], iters);
    });
    const auto gradecast = run_subprotocol(n, t, [&](net::PartyContext& ctx, int id) {
      (void)graded.run(ctx, inputs[static_cast<std::size_t>(id)], iters);
    });
    std::printf("%-14s %-16s %-10zu\n", "hash-echo",
                human_bits(hash_echo.honest_bits()).c_str(), hash_echo.rounds);
    std::printf("%-14s %-16s %-10zu\n", "gradecast",
                human_bits(gradecast.honest_bits()).c_str(), gradecast.rounds);
  }

  const Cost exact = measure(pi_z, n, inputs, 0);
  std::printf("\n## Exact Convex Agreement (Pi_Z): %s, %zu rounds\n",
              human_bits(exact.bits).c_str(), exact.rounds);
  std::printf("\n(theory: AA pays ~2 l n^2 bits per halving iteration -- "
              "each iteration re-ships every l-bit value to everyone -- so "
              "driving epsilon to 0 costs Theta(l n^2 log D); Pi_Z reaches "
              "epsilon = 0 outright at O(l n + kappa n^2 log^2 n).)\n");
  return 0;
}
