// bench_runner: reproducible protocol benchmarks with machine-readable output.
//
//   bench_runner                          # full pinned matrix to stdout
//   bench_runner --out BENCH_PR3.json     # write the JSON to a file
//   bench_runner --baseline seed.json     # embed a prior run for before/after
//   bench_runner --reps 5                 # best-of-N timing (default 3)
//   bench_runner --smoke                  # CI probe: one fast config plus the
//                                         # zero-copy broadcast check
//   bench_runner --trace                  # embed per-entry phase_bits (the
//                                         # leaf phase breakdown, in bits)
//   bench_runner --wire                   # add the "wire_entries" section:
//                                         # every protocol over an in-process
//                                         # epoll daemon (UDS and TCP
//                                         # loopback) vs. the simulator --
//                                         # plus "wire_fault_entries": the
//                                         # recovery cost (latency, replayed
//                                         # rounds/bytes, reconnects) of each
//                                         # wire-fault kind, bit-identical
//                                         # convergence enforced
//
// The matrix is pinned (protocol, n, ell, threads, seed) so runs are
// comparable across commits; every entry reports wall-clock seconds,
// honest_bits, rounds, and payload_copies. Full runs additionally sweep a
// fault matrix -- one crash-recovery configuration at f = t per protocol
// target -- emitted as a separate "fault_entries" array so the honest
// "entries" array stays byte-comparable against pre-fault baselines. The
// JSON schema is versioned ("coca-bench-v2") so downstream tooling can
// detect shape changes. v2 is additive over v1: wire_entries rows gain
// "copies_per_round" (decoder remainder relocations, from
// PayloadMetrics::wire_copies) and "allocs_per_round" (fresh slab
// allocations, from net::BufferPool stats); v1 consumers that ignore
// unknown fields keep working.
//
// Exit status: 0 = success, 1 = a run failed agreement or a smoke invariant
// (honest broadcast must perform zero deep payload copies), 2 = usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "adversary/degradation.h"
#include "adversary/fuzzer.h"
#include "engine/engine.h"
#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "net/buffer_pool.h"
#include "net/payload.h"
#include "net/sync_network.h"
#include "svc/chaos.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire_fault.h"
#include "util/rng.h"

namespace {

using namespace coca;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "bench_runner: " << error << "\n\n";
  std::cerr << "usage: bench_runner [options]\n"
               "  --smoke            fast CI probe (one config + zero-copy "
               "broadcast check)\n"
               "  --out FILE         write JSON to FILE (default stdout)\n"
               "  --baseline FILE    embed FILE's JSON as the \"baseline\" "
               "field\n"
               "  --reps N           best-of-N wall-clock (default 3)\n"
               "  --trace            embed per-entry phase_bits breakdowns\n"
               "  --wire             add wire_entries (simulator vs UDS/TCP "
               "loopback daemon)\n"
               "                     and wire_fault_entries (recovery cost "
               "per fault kind)\n"
               "  --wire-uds PATH    with --wire: connect to an already "
               "running coca_serve\n"
               "                     on PATH instead of an in-process "
               "daemon (UDS rows only)\n";
  std::exit(2);
}

int max_t(int n) { return (n - 1) / 3; }

/// Input spread pinned by seed: top bit set so every value has exactly
/// `bits` bits, remainder uniform. Matches the seed-baseline capture.
std::vector<BigInt> spread_inputs(int n, std::size_t bits,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(BigNat::pow2(bits - 1) + rng.nat_below_pow2(bits - 1),
                        false);
  }
  return inputs;
}

struct Entry {
  const char* bench;
  const char* protocol;
  int n;
  std::size_t ell;
  adv::Kind kind;
  std::uint64_t seed;
};

std::vector<Entry> full_matrix() {
  std::vector<Entry> m;
  for (std::size_t ell : {std::size_t{1} << 14, std::size_t{1} << 16,
                          std::size_t{1} << 18, std::size_t{1} << 20}) {
    m.push_back({"comm_vs_ell", "PiZ", 13, ell, adv::Kind::kGarbage,
                 2000 + ell});
  }
  for (std::size_t ell :
       {std::size_t{1} << 14, std::size_t{1} << 16, std::size_t{1} << 18}) {
    m.push_back({"comm_vs_ell", "BroadcastTrim", 13, ell, adv::Kind::kGarbage,
                 2000 + ell});
  }
  for (int n : {13, 19, 25, 31}) {
    m.push_back({"comm_vs_n", "PiZ", n, 16384, adv::Kind::kSilent,
                 1001 + static_cast<unsigned>(n)});
  }
  return m;
}

std::vector<Entry> smoke_matrix() {
  return {{"smoke", "PiZ", 13, std::size_t{1} << 14, adv::Kind::kGarbage,
           2000 + (std::size_t{1} << 14)}};
}

/// The fault matrix: one benign-fault configuration per protocol target,
/// crash-recovery at the full charge budget f = t. These rows land in a
/// separate "fault_entries" JSON array (the honest "entries" array stays
/// byte-comparable against pre-fault baselines) so BENCH_*.json tracks
/// honest-bits/rounds stability under environment faults across commits.
struct FaultEntry {
  std::string protocol;
  int n;
  std::size_t ell;
  std::uint64_t seed;
};

std::vector<FaultEntry> fault_matrix() {
  std::vector<FaultEntry> m;
  for (const std::string& protocol : adv::known_protocols()) {
    m.push_back({protocol, 7, 256, 0xFA170000 + m.size()});
  }
  return m;
}

struct FaultResult {
  FaultEntry entry;
  double seconds = 0;
  std::uint64_t honest_bits = 0;
  std::size_t rounds = 0;
};

/// Runs one fault-matrix entry best-of-`reps` through the guarded engine;
/// throws if any oracle invariant breaks (f = t is within the covered
/// regime, so every guarantee is owed).
FaultResult run_fault_entry(const FaultEntry& e, int reps) {
  adv::FuzzCase c;
  c.protocol = e.protocol;
  c.n = e.n;
  c.t = max_t(e.n);
  c.ell = e.ell;
  c.input_seed = e.seed;
  c.threads = 1;
  c.faults =
      adv::degradation_plan(adv::FaultKind::kCrashRecovery, c.t, c.n);
  FaultResult out{e};
  out.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const adv::FuzzOutcome r = adv::execute_case(c);
    const auto stop = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(stop - start).count();
    if (s < out.seconds) out.seconds = s;
    if (!r.verdict.ok()) {
      throw Error("bench_runner: " + e.protocol +
                  " violated an invariant under crash-recovery at f=t: " +
                  r.verdict.violations.front());
    }
    out.honest_bits = r.stats.honest_bits();
    out.rounds = r.stats.rounds;
  }
  return out;
}

/// Instance-sharded engine throughput rows (full runs only): the same K
/// honest PiZ cases pushed through engine::Engine at each worker count.
/// Honest bits and rounds are schedule-independent (the engine's headline
/// invariant), so only `seconds` may move between the rows -- a cheap
/// cross-commit tripwire for both throughput and determinism.
struct ThroughputResult {
  int workers = 0;
  int instances = 0;
  double seconds = 0;
  std::uint64_t honest_bits = 0;
  std::uint64_t rounds = 0;
};

std::vector<ThroughputResult> run_throughput_matrix(int reps) {
  constexpr int kInstances = 16;
  std::vector<adv::FuzzCase> cases;
  for (int i = 0; i < kInstances; ++i) {
    adv::FuzzCase c;
    c.protocol = "PiZ";
    c.n = 7;
    c.t = 2;
    c.ell = std::size_t{1} << 14;
    c.input_seed = 0x7B06 + static_cast<std::uint64_t>(i);
    c.threads = 1;
    cases.push_back(std::move(c));
  }
  std::vector<ThroughputResult> rows;
  for (const int workers : {1, 8}) {
    ThroughputResult row;
    row.workers = workers;
    row.instances = kInstances;
    row.seconds = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      engine::EngineOptions opt;
      opt.workers = workers;
      opt.record_transcripts = false;
      const engine::EngineReport report = engine::Engine(opt).run(cases);
      if (report.seconds < row.seconds) row.seconds = report.seconds;
      row.honest_bits = report.honest_bytes * 8;
      row.rounds = report.rounds;
    }
    if (!rows.empty() && (rows.front().honest_bits != row.honest_bits ||
                          rows.front().rounds != row.rounds)) {
      throw Error(
          "bench_runner: engine throughput rows disagree on honest bits or "
          "rounds across worker counts (determinism breach)");
    }
    rows.push_back(row);
  }
  return rows;
}

/// Wire matrix (--wire): every protocol target at n=7, run three ways from
/// the same seed -- plain simulator, over an in-process epoll daemon via
/// UDS, and via TCP loopback. Honest bits/rounds/payload_copies must be
/// bit-identical across all three (the wire is a pure transport); only
/// wall-clock may differ, and that difference is the number the section
/// exists to track.
struct WireResult {
  std::string protocol;
  const char* transport = "uds";
  std::uint64_t seed = 0;
  double sim_seconds = 0;
  double wire_seconds = 0;
  std::uint64_t honest_bits = 0;
  std::uint64_t rounds = 0;
  std::uint64_t payload_copies = 0;
  /// v2 columns, sampled over the final (warmest) rep: decoder remainder
  /// relocations and fresh slab allocations per protocol round. Both sit
  /// at 0.000 in steady state -- the receive path reads into pooled slabs
  /// and delivers views, so nothing is copied or allocated per round.
  double copies_per_round = 0;
  double allocs_per_round = 0;
};

/// With `external_uds` empty, stands up an in-process daemon serving both
/// UDS and TCP loopback and emits one row per transport. With a path, it
/// connects to an already running coca_serve there (CI starts the real
/// binary) and emits UDS rows only.
std::vector<WireResult> run_wire_matrix(int reps,
                                        const std::string& external_uds) {
  const bool own_daemon = external_uds.empty();
  const std::string uds_path =
      own_daemon ? "/tmp/coca-bench-" + std::to_string(::getpid()) + ".sock"
                 : external_uds;
  std::unique_ptr<svc::Daemon> daemon;
  if (own_daemon) {
    svc::DaemonOptions dopt;
    dopt.uds_path = uds_path;
    dopt.tcp = true;
    daemon = std::make_unique<svc::Daemon>(dopt);
    daemon->start();
  }
  std::vector<WireResult> rows;
  {
    const auto uds_client = svc::WireClient::connect_uds_path(uds_path);
    const auto tcp_client =
        own_daemon ? svc::WireClient::connect_tcp(daemon->tcp_port())
                   : nullptr;
    std::uint64_t seed = 0x31BE;
    for (const std::string& protocol : adv::known_protocols()) {
      adv::FuzzCase c;
      c.protocol = protocol;
      c.n = 7;
      c.t = 2;
      c.ell = 256;
      c.input_seed = seed++;
      c.threads = 1;

      double sim_seconds = 1e100;
      adv::FuzzOutcome sim;
      for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        sim = adv::execute_case(c);
        const auto stop = std::chrono::steady_clock::now();
        sim_seconds = std::min(
            sim_seconds, std::chrono::duration<double>(stop - start).count());
      }
      if (!sim.verdict.ok()) {
        throw Error("bench_runner: " + protocol +
                    " failed its oracle in the wire baseline");
      }

      for (svc::WireClient* client : {uds_client.get(), tcp_client.get()}) {
        if (client == nullptr) continue;
        WireResult row;
        row.protocol = protocol;
        row.transport = client == uds_client.get() ? "uds" : "tcp";
        row.seed = c.input_seed;
        row.sim_seconds = sim_seconds;
        row.wire_seconds = 1e100;
        for (int rep = 0; rep < reps; ++rep) {
          const auto session = client->open(c.n, c.t);
          adv::ExecHooks hooks;
          hooks.router = session.get();
          const std::uint64_t copies_before = net::PayloadMetrics::wire_copies();
          const std::uint64_t allocs_before =
              net::BufferPool::instance().stats().slab_allocs;
          const auto start = std::chrono::steady_clock::now();
          const adv::FuzzOutcome wired = adv::execute_case(c, hooks);
          const auto stop = std::chrono::steady_clock::now();
          if (wired.stats.rounds > 0) {
            const double rounds_d = static_cast<double>(wired.stats.rounds);
            row.copies_per_round = static_cast<double>(
                net::PayloadMetrics::wire_copies() - copies_before) / rounds_d;
            row.allocs_per_round = static_cast<double>(
                net::BufferPool::instance().stats().slab_allocs -
                allocs_before) / rounds_d;
          }
          row.wire_seconds = std::min(
              row.wire_seconds,
              std::chrono::duration<double>(stop - start).count());
          if (wired.stats.honest_bits() != sim.stats.honest_bits() ||
              wired.stats.rounds != sim.stats.rounds ||
              wired.stats.payload_copies != sim.stats.payload_copies) {
            throw Error("bench_runner: " + protocol + " over " +
                        row.transport +
                        " diverged from the simulator (honest bits, rounds, "
                        "or payload copies)");
          }
          row.honest_bits = wired.stats.honest_bits();
          row.rounds = wired.stats.rounds;
          row.payload_copies = wired.stats.payload_copies;
        }
        rows.push_back(std::move(row));
      }
    }
  }
  if (own_daemon) {
    daemon->stop();
    ::unlink(uds_path.c_str());
  }
  return rows;
}

/// Wire-fault recovery matrix (--wire): one row per WireFaultPlan kind, a
/// single fault injected at round 1 of a BAPlus n=7 run through the chaos
/// harness (daemon + recovery-enabled client). Every row must recover
/// bit-identically -- a divergence is a hard abort, not a slow row -- so
/// what the section tracks across commits is the *cost* of recovery:
/// wall-clock, client-measured recovery latency, reconnects, and replayed
/// rounds/bytes per fault kind.
struct WireFaultBenchResult {
  const char* kind = "";
  std::uint64_t seed = 0;
  double seconds = 0;
  std::uint64_t recovery_ms = 0;
  std::uint64_t outages = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t replayed_rounds = 0;
  std::uint64_t replayed_bytes = 0;
};

std::vector<WireFaultBenchResult> run_wire_fault_matrix(int reps) {
  using Kind = svc::WireFaultPlan::Kind;
  std::vector<WireFaultBenchResult> rows;
  std::uint64_t seed = 0xFA17;
  for (const Kind kind :
       {Kind::kKillBeforeFlush, Kind::kKillAfterFlush, Kind::kDelayFlush,
        Kind::kStallRead, Kind::kTruncateFrame, Kind::kClientKill,
        Kind::kClientPartialWrite}) {
    adv::FuzzCase c;
    c.protocol = "BAPlus";
    c.n = 7;
    c.t = 2;
    c.ell = 256;
    c.input_seed = seed;
    c.threads = 1;

    svc::WireFaultPlan::Entry e;
    e.kind = kind;
    e.round = 1;
    if (kind == Kind::kDelayFlush || kind == Kind::kStallRead) {
      e.delay_ms = 50;
    }
    if (kind == Kind::kTruncateFrame || kind == Kind::kClientPartialWrite) {
      e.truncate_bytes = 40;
    }
    svc::ChaosOptions copt;
    copt.plan.entries.push_back(e);
    copt.backoff_initial_ms = 1;
    copt.backoff_max_ms = 20;

    WireFaultBenchResult row;
    row.kind = svc::to_string(kind);
    row.seed = seed++;
    row.seconds = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const svc::ChaosReport r = svc::run_case_under_wire_faults(c, copt);
      const auto stop = std::chrono::steady_clock::now();
      if (!r.identical) {
        throw Error(std::string("bench_runner: BAPlus under ") + row.kind +
                    " did not recover bit-identically: " +
                    (r.mismatch.empty() ? r.wired.failure : r.mismatch));
      }
      row.seconds = std::min(
          row.seconds, std::chrono::duration<double>(stop - start).count());
      row.recovery_ms = r.stats.client_recovery_ms;
      row.outages = r.stats.client_outages;
      row.reconnects = r.stats.client_reconnects;
      row.replayed_rounds = r.stats.daemon_replayed_rounds;
      row.replayed_bytes = r.stats.daemon_replayed_bytes;
    }
    rows.push_back(row);
  }
  return rows;
}

/// Zero-copy over the wire: the same honest all-to-all broadcast as
/// zero_copy_probe, but with every round crossing the UDS daemon. The send
/// path writes (header, payload-view) iovecs straight from the protocol's
/// buffers, and the receive path reads into pooled slabs and delivers
/// views, so payload_copies must stay exactly zero end to end -- and once
/// the pool is warm, a steady-state session must allocate no new slabs.
/// Probed with session resumption off: the replay log deliberately pins
/// receive slabs across committed rounds, which makes steady-state slab
/// demand fragmentation-dependent; retention's own no-leak discipline is
/// wire_soak's job.
bool wire_zero_copy_probe(std::string* detail) {
  const std::string uds_path =
      "/tmp/coca-bench-zc-" + std::to_string(::getpid()) + ".sock";
  svc::DaemonOptions dopt;
  dopt.uds_path = uds_path;
  dopt.resume_grace_ms = 0;  // no retention: the transport-only profile
  svc::Daemon daemon(dopt);
  daemon.start();
  net::RunStats stats;
  std::uint64_t steady_slab_allocs = 0;
  {
    const auto client = svc::WireClient::connect_uds_path(uds_path);
    const auto broadcast_session = [&client]() {
      const auto session = client->open(7, 2);
      net::SyncNetwork net(7, 2);
      net.set_round_router(session.get());
      for (int i = 0; i < 7; ++i) {
        net.set_honest(i, [](net::PartyContext& ctx) {
          for (int r = 0; r < 5; ++r) {
            Bytes big(4096, static_cast<std::uint8_t>(r));
            ctx.send_all(std::move(big));
            ctx.advance();
          }
        });
      }
      return net.run();
    };
    (void)broadcast_session();  // warm-up: the pool reaches its high-water
    const std::uint64_t warm = net::BufferPool::instance().stats().slab_allocs;
    stats = broadcast_session();
    steady_slab_allocs =
        net::BufferPool::instance().stats().slab_allocs - warm;
  }
  daemon.stop();
  ::unlink(uds_path.c_str());
  std::ostringstream os;
  os << "payload_copies=" << stats.payload_copies
     << " payload_bytes_copied=" << stats.payload_bytes_copied
     << " steady_state_slab_allocs=" << steady_slab_allocs;
  *detail = os.str();
  return stats.payload_copies == 0 && steady_slab_allocs == 0;
}

struct Result {
  Entry entry;
  double seconds = 0;
  std::uint64_t honest_bits = 0;
  std::size_t rounds = 0;
  std::uint64_t payload_copies = 0;
  /// Leaf phase breakdown in bits (--trace only); sums to honest_bits.
  std::map<std::string, std::uint64_t> phase_bits;
};

/// Runs one matrix entry best-of-`reps`; throws on protocol failure.
Result run_entry(const Entry& e, int reps, bool trace) {
  static const ca::ConvexAgreement pi_z;
  static const ca::DefaultBAStack stack;
  static const ca::BroadcastTrimCA broadcast(stack.kit());
  const ca::CAProtocol& proto =
      std::string(e.protocol) == "PiZ"
          ? static_cast<const ca::CAProtocol&>(pi_z)
          : static_cast<const ca::CAProtocol&>(broadcast);

  ca::SimConfig cfg;
  cfg.n = e.n;
  cfg.t = max_t(e.n);
  cfg.inputs = spread_inputs(e.n, e.ell, e.seed);
  for (int i = 0; i < cfg.t; ++i) {
    cfg.corruptions.push_back({(i * e.n) / std::max(1, cfg.t) + 1, e.kind});
  }
  cfg.extreme_low = BigInt(0);
  cfg.extreme_high = BigInt(BigNat::pow2(24), false);
  cfg.threads = 1;

  Result out{e};
  out.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const ca::SimResult r = ca::run_simulation(proto, cfg);
    const auto stop = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(stop - start).count();
    if (s < out.seconds) out.seconds = s;
    out.honest_bits = r.stats.honest_bits();
    out.rounds = r.stats.rounds;
    out.payload_copies = r.stats.payload_copies;
    if (trace) {
      out.phase_bits.clear();
      for (const auto& [phase, bytes] : r.stats.phase_breakdown) {
        out.phase_bits[phase] = bytes * 8;
      }
    }
    if (!r.agreement()) {
      throw Error("bench_runner: agreement violated in benchmark run");
    }
  }
  return out;
}

/// The zero-copy invariant probe: honest-only all-to-all broadcast of a
/// 4 KiB payload. With the shared-buffer substrate this performs no deep
/// payload copies at all, and the tier-1 test suite pins the same property;
/// the smoke job fails loudly if a regression reintroduces copies.
bool zero_copy_probe(std::string* detail) {
  const int n = 7;
  const int rounds = 5;
  net::SyncNetwork net(n, 2);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [rounds](net::PartyContext& ctx) {
      for (int r = 0; r < rounds; ++r) {
        Bytes big(4096, static_cast<std::uint8_t>(r));
        ctx.send_all(std::move(big));  // rvalue: wraps without copying
        ctx.advance();
      }
    });
  }
  const net::RunStats stats = net.run();
  std::ostringstream os;
  os << "payload_copies=" << stats.payload_copies
     << " payload_bytes_copied=" << stats.payload_bytes_copied;
  *detail = os.str();
  return stats.payload_copies == 0;
}

void write_json(std::ostream& os, const std::vector<Result>& results,
                const std::vector<FaultResult>& fault_results,
                const std::vector<ThroughputResult>& throughput_results,
                const std::vector<WireResult>& wire_results,
                const std::vector<WireFaultBenchResult>& wire_fault_results,
                const std::string& baseline_text, bool smoke) {
  os << "{\n";
  os << "  \"schema\": \"coca-bench-v2\",\n";
  os << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  os << "  \"entries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"bench\": \"%s\", \"protocol\": \"%s\", \"n\": %d, \"t\": %d, "
        "\"ell_bits\": %zu, \"threads\": 1, \"seed\": %llu, "
        "\"seconds\": %.6f, \"honest_bits\": %llu, \"rounds\": %zu, "
        "\"payload_copies\": %llu",
        r.entry.bench, r.entry.protocol, r.entry.n, max_t(r.entry.n),
        r.entry.ell, static_cast<unsigned long long>(r.entry.seed), r.seconds,
        static_cast<unsigned long long>(r.honest_bits), r.rounds,
        static_cast<unsigned long long>(r.payload_copies));
    os << buf;
    // Only --trace runs carry the breakdown, so untraced output stays
    // byte-identical to pre --trace baselines.
    if (!r.phase_bits.empty()) {
      os << ", \"phase_bits\": {";
      bool first = true;
      for (const auto& [phase, bits] : r.phase_bits) {
        os << (first ? "" : ", ") << "\"" << phase << "\": " << bits;
        first = false;
      }
      os << "}";
    }
    os << "}" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ]";
  if (!fault_results.empty()) {
    os << ",\n  \"fault_entries\": [\n";
    for (std::size_t i = 0; i < fault_results.size(); ++i) {
      const FaultResult& r = fault_results[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"bench\": \"fault_recovery\", \"protocol\": \"%s\", "
          "\"n\": %d, \"t\": %d, \"ell_bits\": %zu, "
          "\"fault\": \"crash-recovery\", \"f\": %d, \"threads\": 1, "
          "\"seed\": %llu, \"seconds\": %.6f, \"honest_bits\": %llu, "
          "\"rounds\": %zu}%s",
          r.entry.protocol.c_str(), r.entry.n, max_t(r.entry.n), r.entry.ell,
          max_t(r.entry.n), static_cast<unsigned long long>(r.entry.seed),
          r.seconds, static_cast<unsigned long long>(r.honest_bits), r.rounds,
          i + 1 < fault_results.size() ? ",\n" : "\n");
      os << buf;
    }
    os << "  ]";
  }
  if (!throughput_results.empty()) {
    os << ",\n  \"throughput_entries\": [\n";
    for (std::size_t i = 0; i < throughput_results.size(); ++i) {
      const ThroughputResult& r = throughput_results[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"bench\": \"throughput\", \"protocol\": \"PiZ\", "
          "\"n\": 7, \"t\": 2, \"ell_bits\": %zu, \"instances\": %d, "
          "\"workers\": %d, \"seconds\": %.6f, "
          "\"instances_per_sec\": %.3f, \"honest_bits\": %llu, "
          "\"honest_bits_per_sec\": %.0f, \"rounds\": %llu}%s",
          std::size_t{1} << 14, r.instances, r.workers, r.seconds,
          r.instances / r.seconds,
          static_cast<unsigned long long>(r.honest_bits),
          static_cast<double>(r.honest_bits) / r.seconds,
          static_cast<unsigned long long>(r.rounds),
          i + 1 < throughput_results.size() ? ",\n" : "\n");
      os << buf;
    }
    os << "  ]";
  }
  if (!wire_results.empty()) {
    os << ",\n  \"wire_entries\": [\n";
    for (std::size_t i = 0; i < wire_results.size(); ++i) {
      const WireResult& r = wire_results[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"bench\": \"wire\", \"protocol\": \"%s\", "
          "\"transport\": \"%s\", \"n\": 7, \"t\": 2, \"ell_bits\": 256, "
          "\"threads\": 1, \"seed\": %llu, \"sim_seconds\": %.6f, "
          "\"wire_seconds\": %.6f, \"honest_bits\": %llu, \"rounds\": %llu, "
          "\"payload_copies\": %llu, \"copies_per_round\": %.3f, "
          "\"allocs_per_round\": %.3f}%s",
          r.protocol.c_str(), r.transport,
          static_cast<unsigned long long>(r.seed), r.sim_seconds,
          r.wire_seconds, static_cast<unsigned long long>(r.honest_bits),
          static_cast<unsigned long long>(r.rounds),
          static_cast<unsigned long long>(r.payload_copies),
          r.copies_per_round, r.allocs_per_round,
          i + 1 < wire_results.size() ? ",\n" : "\n");
      os << buf;
    }
    os << "  ]";
  }
  if (!wire_fault_results.empty()) {
    os << ",\n  \"wire_fault_entries\": [\n";
    for (std::size_t i = 0; i < wire_fault_results.size(); ++i) {
      const WireFaultBenchResult& r = wire_fault_results[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"bench\": \"wire_fault\", \"protocol\": \"BAPlus\", "
          "\"fault\": \"%s\", \"n\": 7, \"t\": 2, \"ell_bits\": 256, "
          "\"threads\": 1, \"seed\": %llu, \"seconds\": %.6f, "
          "\"recovery_ms\": %llu, \"outages\": %llu, \"reconnects\": %llu, "
          "\"replayed_rounds\": %llu, \"replayed_bytes\": %llu}%s",
          r.kind, static_cast<unsigned long long>(r.seed), r.seconds,
          static_cast<unsigned long long>(r.recovery_ms),
          static_cast<unsigned long long>(r.outages),
          static_cast<unsigned long long>(r.reconnects),
          static_cast<unsigned long long>(r.replayed_rounds),
          static_cast<unsigned long long>(r.replayed_bytes),
          i + 1 < wire_fault_results.size() ? ",\n" : "\n");
      os << buf;
    }
    os << "  ]";
  }
  if (!baseline_text.empty()) {
    os << ",\n  \"baseline\": " << baseline_text;
  }
  os << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool trace = false;
  bool wire = false;
  int reps = 3;
  std::string out_path;
  std::string baseline_path;
  std::string wire_uds;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--wire") {
      wire = true;
    } else if (arg == "--wire-uds") {
      wire_uds = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
      if (reps < 1) usage("--reps must be >= 1");
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option " + arg);
    }
  }
  if (!wire_uds.empty() && !wire) usage("--wire-uds needs --wire");

  std::string baseline_text;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) usage("cannot read baseline file " + baseline_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    baseline_text = ss.str();
    while (!baseline_text.empty() &&
           (baseline_text.back() == '\n' || baseline_text.back() == ' ')) {
      baseline_text.pop_back();
    }
  }

  int status = 0;
  if (smoke) {
    std::string detail;
    if (zero_copy_probe(&detail)) {
      std::cerr << "smoke: honest broadcast zero-copy ok (" << detail << ")\n";
    } else {
      std::cerr << "smoke: FAIL: honest broadcast copied payloads (" << detail
                << ")\n";
      status = 1;
    }
  }

  std::vector<Result> results;
  for (const Entry& e : smoke ? smoke_matrix() : full_matrix()) {
    try {
      results.push_back(run_entry(e, smoke ? 1 : reps, trace));
    } catch (const std::exception& ex) {
      std::cerr << "bench_runner: " << ex.what() << "\n";
      return 1;
    }
    const Result& r = results.back();
    std::cerr << r.entry.bench << " " << r.entry.protocol << " n=" << r.entry.n
              << " ell=" << r.entry.ell << ": " << r.seconds << "s, "
              << r.honest_bits << " honest bits, " << r.rounds << " rounds, "
              << r.payload_copies << " payload copies\n";
  }

  std::vector<WireResult> wire_results;
  std::vector<WireFaultBenchResult> wire_fault_results;
  if (wire) {
    std::string detail;
    if (wire_zero_copy_probe(&detail)) {
      std::cerr << "wire: honest broadcast over UDS zero-copy ok (" << detail
                << ")\n";
    } else {
      std::cerr << "wire: FAIL: honest broadcast over UDS copied payloads ("
                << detail << ")\n";
      status = 1;
    }
    try {
      wire_results = run_wire_matrix(smoke ? 1 : reps, wire_uds);
    } catch (const std::exception& ex) {
      std::cerr << "bench_runner: " << ex.what() << "\n";
      return 1;
    }
    for (const WireResult& r : wire_results) {
      std::cerr << "wire " << r.protocol << " over " << r.transport
                << ": sim " << r.sim_seconds << "s, wire " << r.wire_seconds
                << "s, " << r.honest_bits << " honest bits, " << r.rounds
                << " rounds (bit-identical)\n";
    }
    try {
      wire_fault_results = run_wire_fault_matrix(smoke ? 1 : reps);
    } catch (const std::exception& ex) {
      std::cerr << "bench_runner: " << ex.what() << "\n";
      return 1;
    }
    for (const WireFaultBenchResult& r : wire_fault_results) {
      std::cerr << "wire_fault " << r.kind << ": " << r.seconds << "s, "
                << r.recovery_ms << "ms recovery, " << r.reconnects
                << " reconnects, " << r.replayed_rounds
                << " rounds replayed (" << r.replayed_bytes
                << " bytes, bit-identical)\n";
    }
  }

  std::vector<FaultResult> fault_results;
  std::vector<ThroughputResult> throughput_results;
  if (!smoke) {
    try {
      throughput_results = run_throughput_matrix(reps);
    } catch (const std::exception& ex) {
      std::cerr << "bench_runner: " << ex.what() << "\n";
      return 1;
    }
    for (const ThroughputResult& r : throughput_results) {
      std::cerr << "throughput PiZ n=7 K=" << r.instances
                << " workers=" << r.workers << ": " << r.seconds << "s, "
                << r.instances / r.seconds << " instances/sec, "
                << r.honest_bits << " honest bits\n";
    }
    for (const FaultEntry& e : fault_matrix()) {
      try {
        fault_results.push_back(run_fault_entry(e, reps));
      } catch (const std::exception& ex) {
        std::cerr << "bench_runner: " << ex.what() << "\n";
        return 1;
      }
      const FaultResult& r = fault_results.back();
      std::cerr << "fault_recovery " << r.entry.protocol << " n=" << r.entry.n
                << " f=t=" << max_t(r.entry.n) << ": " << r.seconds << "s, "
                << r.honest_bits << " honest bits, " << r.rounds
                << " rounds\n";
    }
  }

  if (out_path.empty()) {
    write_json(std::cout, results, fault_results, throughput_results,
               wire_results, wire_fault_results, baseline_text, smoke);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_runner: cannot write " << out_path << "\n";
      return 1;
    }
    write_json(out, results, fault_results, throughput_results, wire_results,
               wire_fault_results, baseline_text, smoke);
  }
  return status;
}
