// wire_soak: concurrent chaos soak for the service runtime.
//
//   wire_soak --seconds 30 --sessions 4         # CI default
//   wire_soak --seconds 300 --sessions 8        # longer local hammering
//   wire_soak --seed 7 --out soak-fail.json     # reproducer on failure
//
// Runs K worker threads for a wall-clock budget. Each worker repeatedly
// draws a deterministic (case, wire-fault plan) pair -- protocols cycled,
// n in {4, 7}, plans sampled by svc::sample_wire_fault_plan, every fifth
// iteration additionally restarting the daemon mid-run -- and pushes it
// through svc::run_case_under_wire_faults: its own fresh daemon + recovery
// client on a unique UDS path, so K sessions genuinely fail and recover
// concurrently. Every iteration must satisfy the survivability contract
// (bit-identical recovery, or a structured give-up); the first violation is
// printed, optionally written to --out as a coca-wirechaos-v1 reproducer,
// and fails the run.
//
// Two watchdogs back the per-iteration check:
//  * a stall monitor on the main thread: any iteration exceeding
//    --stall-sec (default 60) means a wedged session -- the soak prints the
//    offender and hard-exits, because a hang is exactly the bug the
//    recovery layer exists to prevent;
//  * a pool-leak check at the end: the BufferPool's outstanding slab count
//    (allocs + reuses - releases) must return to its pre-soak value once
//    every daemon and client is down -- replay retention must pin slabs
//    only while sessions live.
//
// Exit status: 0 = every iteration ok and no leaks, 1 = violation, stuck
// session, or slab leak, 2 = usage error.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "adversary/fuzzer.h"
#include "net/buffer_pool.h"
#include "svc/chaos.h"
#include "svc/wire_fault.h"
#include "util/rng.h"

namespace {

using namespace coca;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "wire_soak: " << error << "\n\n";
  std::cerr << "usage: wire_soak [options]\n"
               "  --seconds S    wall-clock soak budget (default 30)\n"
               "  --sessions K   concurrent worker sessions (default 4)\n"
               "  --seed S       soak stream seed (default 1)\n"
               "  --stall-sec S  per-iteration watchdog (default 60)\n"
               "  --out FILE     write the first failing case to FILE as a\n"
               "                 coca-wirechaos-v1 reproducer\n";
  std::exit(2);
}

/// Per-worker liveness record for the stall monitor. `iteration_start`
/// holds the steady-clock epoch milliseconds at which the current
/// iteration began, 0 while idle.
struct WorkerState {
  std::atomic<std::uint64_t> iteration_start{0};
  std::atomic<std::uint64_t> iterations{0};
  std::atomic<std::uint64_t> identical{0};
  std::atomic<std::uint64_t> structured{0};
  std::atomic<std::uint64_t> outages{0};
  std::atomic<std::uint64_t> replayed_rounds{0};
  std::atomic<std::uint64_t> restarts{0};
};

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deterministic case stream: protocols cycled, n alternating 4/7, seeds
/// derived from (soak seed, worker, iteration) so a reported failure names
/// everything needed to re-draw it.
adv::FuzzCase draw_case(const std::vector<std::string>& protocols,
                        std::uint64_t seed, int worker, std::uint64_t iter) {
  const std::uint64_t stream =
      Rng::derive_stream_seed(seed, (static_cast<std::uint64_t>(worker) << 32) | iter);
  adv::FuzzCase c;
  c.protocol = protocols[stream % protocols.size()];
  c.n = (stream >> 8) % 2 == 0 ? 4 : 7;
  c.t = (c.n - 1) / 3;
  c.ell = 16u << ((stream >> 16) % 4);  // 16..128 bits
  c.input_seed = stream;
  c.threads = 1;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 30;
  int sessions = 4;
  std::uint64_t seed = 1;
  int stall_sec = 60;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--seconds") {
        seconds = std::stod(next());
        if (seconds <= 0) usage("--seconds must be > 0");
      } else if (arg == "--sessions") {
        sessions = std::stoi(next());
        if (sessions < 1) usage("--sessions must be >= 1");
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--stall-sec") {
        stall_sec = std::stoi(next());
        if (stall_sec < 1) usage("--stall-sec must be >= 1");
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad numeric value for " + arg);
    }
  }

  const std::vector<std::string> protocols = adv::known_protocols();
  const auto pool_outstanding = [] {
    const net::BufferPool::Stats s = net::BufferPool::instance().stats();
    return s.slab_allocs + s.slab_reuses - s.slab_releases;
  };
  const std::uint64_t slabs_before = pool_outstanding();

  std::vector<WorkerState> states(static_cast<std::size_t>(sessions));
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<int> active{sessions};
  std::mutex report_mu;  // serializes failure reporting + --out

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::vector<std::thread> workers;
  for (int w = 0; w < sessions; ++w) {
    workers.emplace_back([&, w] {
      struct ActiveGuard {
        std::atomic<int>& n;
        ~ActiveGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
      } guard{active};
      WorkerState& st = states[static_cast<std::size_t>(w)];
      for (std::uint64_t iter = 0;
           !stop.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline;
           ++iter) {
        const adv::FuzzCase c = draw_case(protocols, seed, w, iter);
        svc::WireFaultSampleConfig cfg;
        cfg.max_entries = 2;
        cfg.max_stall_ms = 20;
        cfg.seed = Rng::derive_stream_seed(
            seed,
            0x50AC0000ULL ^ (static_cast<std::uint64_t>(w) << 32) ^ iter);
        svc::ChaosOptions opt;
        opt.plan = svc::sample_wire_fault_plan(cfg);
        opt.backoff_initial_ms = 1;
        opt.backoff_max_ms = 20;
        opt.restart_daemon_mid_run =
            iter % 5 == 4 && !opt.plan.empty() && opt.plan.has_daemon_site();
        st.iteration_start.store(now_ms(), std::memory_order_relaxed);
        svc::ChaosReport rep;
        try {
          rep = svc::run_case_under_wire_faults(c, opt);
        } catch (const std::exception& e) {
          st.iteration_start.store(0, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(report_mu);
          std::cerr << "wire_soak: worker " << w << " iteration " << iter
                    << " threw: " << e.what() << "\n";
          failed.store(true);
          stop.store(true);
          return;
        }
        st.iteration_start.store(0, std::memory_order_relaxed);
        st.iterations.fetch_add(1, std::memory_order_relaxed);
        st.outages.fetch_add(rep.stats.client_outages,
                             std::memory_order_relaxed);
        st.replayed_rounds.fetch_add(rep.stats.daemon_replayed_rounds,
                                     std::memory_order_relaxed);
        st.restarts.fetch_add(rep.stats.daemon_restarts,
                              std::memory_order_relaxed);
        if (rep.ok()) {
          (rep.identical ? st.identical : st.structured)
              .fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        std::lock_guard<std::mutex> lock(report_mu);
        std::cerr << "wire_soak: VIOLATION at worker " << w << " iteration "
                  << iter << " (" << c.protocol << ", n=" << c.n << ", "
                  << opt.plan.entries.size() << " fault entries"
                  << (opt.restart_daemon_mid_run ? ", daemon restart" : "")
                  << "):\n  "
                  << (rep.mismatch.empty() ? "wired run did not resolve"
                                           : rep.mismatch)
                  << "\n";
        if (!out_path.empty() && !failed.load()) {
          adv::CorpusEntry entry;
          entry.c = c;
          entry.violations = {rep.mismatch.empty()
                                  ? "wired run did not resolve"
                                  : rep.mismatch};
          entry.note = "wire_soak worker " + std::to_string(w) +
                       " iteration " + std::to_string(iter);
          std::ofstream out(out_path);
          if (out) {
            out << svc::wire_chaos_to_json(entry, opt.plan);
            std::cerr << "wire_soak: wrote " << out_path << "\n";
          } else {
            std::cerr << "wire_soak: cannot write " << out_path << "\n";
          }
        }
        failed.store(true);
        stop.store(true);
        return;
      }
    });
  }

  // Stall monitor: a single wedged iteration means the recovery layer hung,
  // which join() would then inherit -- so report and hard-exit instead.
  while (active.load(std::memory_order_relaxed) > 0) {
    for (int w = 0; w < sessions; ++w) {
      const std::uint64_t start =
          states[static_cast<std::size_t>(w)].iteration_start.load(
              std::memory_order_relaxed);
      if (start != 0 &&
          now_ms() - start > static_cast<std::uint64_t>(stall_sec) * 1000) {
        std::cerr << "wire_soak: STUCK SESSION: worker " << w
                  << " has been inside one iteration for over " << stall_sec
                  << "s\n";
        std::_Exit(1);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (auto& t : workers) t.join();

  std::uint64_t iterations = 0;
  std::uint64_t identical = 0;
  std::uint64_t structured = 0;
  std::uint64_t outages = 0;
  std::uint64_t replayed = 0;
  std::uint64_t restarts = 0;
  for (const WorkerState& st : states) {
    iterations += st.iterations.load();
    identical += st.identical.load();
    structured += st.structured.load();
    outages += st.outages.load();
    replayed += st.replayed_rounds.load();
    restarts += st.restarts.load();
  }
  std::cerr << "wire_soak: " << iterations << " iterations across "
            << sessions << " workers: " << identical << " bit-identical, "
            << structured << " structured give-ups, " << outages
            << " outages absorbed, " << replayed << " rounds replayed, "
            << restarts << " daemon restarts\n";

  if (failed.load()) return 1;
  const std::uint64_t slabs_after = pool_outstanding();
  if (slabs_after != slabs_before) {
    std::cerr << "wire_soak: SLAB LEAK: outstanding pooled slabs went from "
              << slabs_before << " to " << slabs_after
              << " with every session closed\n";
    return 1;
  }
  std::cerr << "wire_soak: no leaks: outstanding slabs back to "
            << slabs_before << "\n";
  return 0;
}
