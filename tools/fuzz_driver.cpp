// fuzz_driver: command-line front end for the adversary search (adv::Fuzzer).
//
//   fuzz_driver --budget-sec 60                 # sweep everything for 60s
//   fuzz_driver --protocols PiZ,BAPlus --n 4    # focus the search
//   fuzz_driver --corpus-out tests/corpus       # persist minimized repros
//   fuzz_driver --replay tests/corpus/x.json    # deterministic re-execution
//   fuzz_driver --expect-violation ...          # CI canary: fail unless the
//                                               # oracle catches something
//   fuzz_driver --sharded ...                   # run every case as the
//                                               # victim inside a sharded
//                                               # engine; the oracle also
//                                               # checks neighbor isolation
//
// Exit status: 0 = verdict matches expectation (clean sweep, or a violation
// under --expect-violation), 1 = it does not, 2 = usage error.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/fuzzer.h"
#include "engine/engine.h"
#include "obs/adapt.h"
#include "util/rng.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace {

using coca::adv::CorpusEntry;
using coca::adv::FuzzerOptions;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "fuzz_driver: " << error << "\n\n";
  std::cerr <<
      "usage: fuzz_driver [options]\n"
      "  --budget-sec S       wall-clock search budget (default 10)\n"
      "  --iters N            max cases to execute (default unlimited)\n"
      "  --protocols A,B,...  targets to sweep (default: all; see --list)\n"
      "  --n N1,N2,...        network sizes to draw from (default 4,7)\n"
      "  --seed S             search-stream seed (default 1)\n"
      "  --threads K          ExecPolicy window for every run (default 0 = auto)\n"
      "  --faults             also draw environment fault plans (crashes,\n"
      "                       link cuts, partitions, shuffles) as a search\n"
      "                       dimension, keeping |corrupted|+|charged| <= t\n"
      "  --no-shrink          report violations without minimizing them\n"
      "  --corpus-out DIR     write each minimized violation to DIR/*.json,\n"
      "                       plus a canonical *.trace.json metrics trace of\n"
      "                       the counterexample's execution\n"
      "  --replay FILE        re-execute one corpus entry instead of searching\n"
      "  --expect-violation   invert the exit status (canary runs must fail)\n"
      "  --sharded            run each case as the victim instance inside a\n"
      "                       sharded engine (engine::check_isolation): the\n"
      "                       oracle additionally requires every honest\n"
      "                       neighbor instance to be bit-identical to its\n"
      "                       solo run (works with --replay too)\n"
      "  --list               print the known protocol targets\n";
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string arg_value(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) usage("missing value for " + flag);
  return argv[++i];
}

int replay(const std::string& path, int threads_override, bool has_threads,
           bool sharded) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fuzz_driver: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  CorpusEntry entry = coca::adv::corpus_entry_from_json(buf.str());
  if (has_threads) entry.c.threads = threads_override;
  if (sharded) {
    const coca::engine::IsolationReport report =
        coca::engine::check_isolation(entry.c, coca::engine::ShardedCaseOptions{});
    std::cout << "replay (sharded) " << path << " (" << entry.c.protocol
              << ", n=" << entry.c.n << ", seed=" << entry.c.mutation.seed
              << ")\n";
    for (const auto& v : report.victim.violations) {
      std::cout << "  violation: " << v << "\n";
    }
    for (const auto& v : report.violations) {
      std::cout << "  isolation breach: " << v << "\n";
    }
    if (report.victim.ok() && report.ok()) {
      std::cout << "  oracle: victim invariants hold, neighbors untouched\n";
      return 0;
    }
    return 1;
  }
  const auto outcome = coca::adv::execute_case(entry.c);
  std::cout << "replay " << path << " (" << entry.c.protocol
            << ", n=" << entry.c.n << ", seed=" << entry.c.mutation.seed
            << ", threads=" << entry.c.threads << ")\n";
  if (outcome.verdict.ok()) {
    std::cout << "  oracle: all invariants hold ("
              << outcome.stats.rounds << " rounds, "
              << outcome.stats.honest_bits() << " honest bits)\n";
    return 0;
  }
  for (const auto& v : outcome.verdict.violations) {
    std::cout << "  violation: " << v << "\n";
  }
  return 1;
}

/// The sharded-engine search target: every drawn case becomes the victim of
/// an engine::check_isolation run. Only cross-instance leaks count as
/// violations here -- the victim's own oracle verdict is the plain target's
/// job -- so a breach means the engine let a byzantine instance perturb an
/// honest neighbor.
int run_sharded_search(const FuzzerOptions& options,
                       const std::string& corpus_out, bool expect_violation) {
  coca::adv::Fuzzer fuzzer(options);
  coca::engine::ShardedCaseOptions shard;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options.budget_sec);
  std::size_t executed = 0;
  std::size_t breaches = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (options.max_cases == 0 || executed < options.max_cases)) {
    coca::adv::FuzzCase c = fuzzer.next_case();
    // Sharded runs multiply each case by the neighbor count; keep the
    // payload scale bounded so the sweep stays a search, not a bench.
    c.ell = std::min<std::size_t>(c.ell, 256);
    shard.neighbor_seed =
        coca::Rng::derive_stream_seed(options.seed, 0x5A4DULL + executed);
    const coca::engine::IsolationReport report =
        coca::engine::check_isolation(c, shard);
    ++executed;
    if (report.ok()) continue;
    ++breaches;
    std::cout << "isolation breach (" << c.protocol << ", n=" << c.n
              << ", mutation seed=" << c.mutation.seed << "):\n";
    for (const auto& v : report.violations) {
      std::cout << "  " << v << "\n";
    }
    if (!corpus_out.empty()) {
      CorpusEntry entry;
      entry.c = c;
      entry.violations = report.violations;
      entry.note = "sharded-engine isolation victim";
      const std::string path = corpus_out + "/sharded-" + c.protocol + "-" +
                               std::to_string(c.mutation.seed) + ".json";
      std::ofstream out(path);
      if (!out) {
        std::cerr << "fuzz_driver: cannot write " << path << "\n";
        return 2;
      }
      out << coca::adv::to_json(entry);
      std::cout << "  wrote " << path << "\n";
    }
  }
  std::cout << "executed " << executed << " sharded cases, " << breaches
            << " isolation breaches\n";
  if (breaches == 0) {
    std::cout << "no violations: every neighbor matched its solo run\n";
  }
  const bool violated = breaches != 0;
  return expect_violation ? (violated ? 0 : 1) : (violated ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  FuzzerOptions options;
  options.sizes = {4, 7};
  std::string corpus_out;
  std::string replay_path;
  bool expect_violation = false;
  bool has_threads = false;
  bool sharded = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--budget-sec") {
        options.budget_sec = std::stod(arg_value(argc, argv, i, arg));
      } else if (arg == "--iters") {
        options.max_cases = std::stoull(arg_value(argc, argv, i, arg));
      } else if (arg == "--protocols") {
        options.protocols = split_csv(arg_value(argc, argv, i, arg));
      } else if (arg == "--n") {
        options.sizes.clear();
        for (const auto& s : split_csv(arg_value(argc, argv, i, arg))) {
          options.sizes.push_back(std::stoi(s));
        }
      } else if (arg == "--seed") {
        options.seed = std::stoull(arg_value(argc, argv, i, arg));
      } else if (arg == "--threads") {
        options.threads = std::stoi(arg_value(argc, argv, i, arg));
        has_threads = true;
      } else if (arg == "--faults") {
        options.faults = true;
      } else if (arg == "--no-shrink") {
        options.shrink = false;
      } else if (arg == "--corpus-out") {
        corpus_out = arg_value(argc, argv, i, arg);
      } else if (arg == "--replay") {
        replay_path = arg_value(argc, argv, i, arg);
      } else if (arg == "--expect-violation") {
        expect_violation = true;
      } else if (arg == "--sharded") {
        sharded = true;
      } else if (arg == "--list") {
        for (const auto& p : coca::adv::known_protocols()) {
          std::cout << p << "\n";
        }
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad value for " + arg);
    } catch (const std::out_of_range&) {
      usage("bad value for " + arg);
    }
  }

  try {
    if (!replay_path.empty()) {
      const int status =
          replay(replay_path, options.threads, has_threads, sharded);
      if (status == 2) return 2;
      return expect_violation ? (status == 1 ? 0 : 1) : status;
    }

    if (sharded) {
      return run_sharded_search(options, corpus_out, expect_violation);
    }

    coca::adv::Fuzzer fuzzer(options);
    const auto report = fuzzer.run();
    std::cout << "executed " << report.executed << " cases:";
    for (const auto& [proto, count] : report.cases_by_protocol) {
      std::cout << " " << proto << "=" << count;
    }
    std::cout << "\n";
    for (const auto& entry : report.violations) {
      std::cout << "violation (" << entry.c.protocol << ", n=" << entry.c.n
                << ", mutation seed=" << entry.c.mutation.seed << "):\n";
      for (const auto& v : entry.violations) {
        std::cout << "  " << v << "\n";
      }
      if (!corpus_out.empty()) {
        const std::string path = corpus_out + "/" + entry.c.protocol + "-" +
                                 std::to_string(entry.c.mutation.seed) +
                                 ".json";
        std::ofstream out(path);
        if (!out) {
          std::cerr << "fuzz_driver: cannot write " << path << "\n";
          return 2;
        }
        out << coca::adv::to_json(entry);
        std::cout << "  wrote " << path << "\n";
        // Attach a canonical (timing-free, schedule-independent) metrics
        // trace of the minimized counterexample next to the entry.
        namespace obs = coca::obs;
        obs::Tracer tracer(obs::Tracer::Options{/*timing=*/false});
        const auto traced =
            coca::adv::execute_case(entry.c, /*transcript=*/nullptr, &tracer);
        obs::RunMeta meta;
        meta.protocol = entry.c.protocol;
        meta.n = entry.c.n;
        meta.t = entry.c.t;
        meta.ell_bits = entry.c.ell;
        meta.seed = entry.c.input_seed;
        meta.threads = entry.c.threads;
        meta.notes = "fuzz counterexample, mutation seed " +
                     std::to_string(entry.c.mutation.seed);
        const std::string trace_path =
            corpus_out + "/" + entry.c.protocol + "-" +
            std::to_string(entry.c.mutation.seed) + ".trace.json";
        std::ofstream trace_out(trace_path);
        if (!trace_out) {
          std::cerr << "fuzz_driver: cannot write " << trace_path << "\n";
          return 2;
        }
        trace_out << obs::metrics_json(tracer, meta,
                                       obs::stats_view(traced.stats),
                                       /*include_timing=*/false);
        std::cout << "  wrote " << trace_path << "\n";
      }
    }
    if (report.violations.empty()) {
      std::cout << "no violations: every execution satisfied the oracle\n";
    }
    const bool violated = !report.violations.empty();
    return expect_violation ? (violated ? 0 : 1) : (violated ? 1 : 0);
  } catch (const std::exception& e) {
    std::cerr << "fuzz_driver: " << e.what() << "\n";
    return 2;
  }
}
