// fuzz_driver: command-line front end for the adversary search (adv::Fuzzer).
//
//   fuzz_driver --budget-sec 60                 # sweep everything for 60s
//   fuzz_driver --protocols PiZ,BAPlus --n 4    # focus the search
//   fuzz_driver --corpus-out tests/corpus       # persist minimized repros
//   fuzz_driver --replay tests/corpus/x.json    # deterministic re-execution
//   fuzz_driver --expect-violation ...          # CI canary: fail unless the
//                                               # oracle catches something
//   fuzz_driver --sharded ...                   # run every case as the
//                                               # victim inside a sharded
//                                               # engine; the oracle also
//                                               # checks neighbor isolation
//   fuzz_driver --wire-faults ...               # run every case through the
//                                               # wire-chaos harness with a
//                                               # sampled WireFaultPlan; the
//                                               # oracle requires the wired
//                                               # run to be bit-identical or
//                                               # to resolve structurally
//   fuzz_driver --wire-replay FILE              # re-execute one
//                                               # coca-wirechaos-v1 repro
//
// Exit status: 0 = verdict matches expectation (clean sweep, or a violation
// under --expect-violation), 1 = it does not, 2 = usage error.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/fuzzer.h"
#include "engine/engine.h"
#include "obs/adapt.h"
#include "svc/chaos.h"
#include "svc/wire_fault.h"
#include "util/rng.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace {

using coca::adv::CorpusEntry;
using coca::adv::FuzzerOptions;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "fuzz_driver: " << error << "\n\n";
  std::cerr <<
      "usage: fuzz_driver [options]\n"
      "  --budget-sec S       wall-clock search budget (default 10)\n"
      "  --iters N            max cases to execute (default unlimited)\n"
      "  --protocols A,B,...  targets to sweep (default: all; see --list)\n"
      "  --n N1,N2,...        network sizes to draw from (default 4,7)\n"
      "  --seed S             search-stream seed (default 1)\n"
      "  --threads K          ExecPolicy window for every run (default 0 = auto)\n"
      "  --faults             also draw environment fault plans (crashes,\n"
      "                       link cuts, partitions, shuffles) as a search\n"
      "                       dimension, keeping |corrupted|+|charged| <= t\n"
      "  --no-shrink          report violations without minimizing them\n"
      "  --corpus-out DIR     write each minimized violation to DIR/*.json,\n"
      "                       plus a canonical *.trace.json metrics trace of\n"
      "                       the counterexample's execution\n"
      "  --replay FILE        re-execute one corpus entry instead of searching\n"
      "  --expect-violation   invert the exit status (canary runs must fail)\n"
      "  --sharded            run each case as the victim instance inside a\n"
      "                       sharded engine (engine::check_isolation): the\n"
      "                       oracle additionally requires every honest\n"
      "                       neighbor instance to be bit-identical to its\n"
      "                       solo run (works with --replay too)\n"
      "  --wire-faults        run each case through a daemon + recovery\n"
      "                       client under a sampled wire-fault schedule\n"
      "                       (svc::run_case_under_wire_faults): the wired\n"
      "                       run must be bit-identical to the fault-free\n"
      "                       baseline or resolve to a structured give-up;\n"
      "                       anything else is a violation, shrunk by\n"
      "                       greedily dropping plan entries and written to\n"
      "                       --corpus-out as wire-*.json (coca-wirechaos-v1)\n"
      "  --wire-replay FILE   re-execute one coca-wirechaos-v1 reproducer\n"
      "  --list               print the known protocol targets\n";
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string arg_value(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) usage("missing value for " + flag);
  return argv[++i];
}

int replay(const std::string& path, int threads_override, bool has_threads,
           bool sharded) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fuzz_driver: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  CorpusEntry entry = coca::adv::corpus_entry_from_json(buf.str());
  if (has_threads) entry.c.threads = threads_override;
  if (sharded) {
    const coca::engine::IsolationReport report =
        coca::engine::check_isolation(entry.c, coca::engine::ShardedCaseOptions{});
    std::cout << "replay (sharded) " << path << " (" << entry.c.protocol
              << ", n=" << entry.c.n << ", seed=" << entry.c.mutation.seed
              << ")\n";
    for (const auto& v : report.victim.violations) {
      std::cout << "  violation: " << v << "\n";
    }
    for (const auto& v : report.violations) {
      std::cout << "  isolation breach: " << v << "\n";
    }
    if (report.victim.ok() && report.ok()) {
      std::cout << "  oracle: victim invariants hold, neighbors untouched\n";
      return 0;
    }
    return 1;
  }
  const auto outcome = coca::adv::execute_case(entry.c);
  std::cout << "replay " << path << " (" << entry.c.protocol
            << ", n=" << entry.c.n << ", seed=" << entry.c.mutation.seed
            << ", threads=" << entry.c.threads << ")\n";
  if (outcome.verdict.ok()) {
    std::cout << "  oracle: all invariants hold ("
              << outcome.stats.rounds << " rounds, "
              << outcome.stats.honest_bits() << " honest bits)\n";
    return 0;
  }
  for (const auto& v : outcome.verdict.violations) {
    std::cout << "  violation: " << v << "\n";
  }
  return 1;
}

/// The sharded-engine search target: every drawn case becomes the victim of
/// an engine::check_isolation run. Only cross-instance leaks count as
/// violations here -- the victim's own oracle verdict is the plain target's
/// job -- so a breach means the engine let a byzantine instance perturb an
/// honest neighbor.
int run_sharded_search(const FuzzerOptions& options,
                       const std::string& corpus_out, bool expect_violation) {
  coca::adv::Fuzzer fuzzer(options);
  coca::engine::ShardedCaseOptions shard;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options.budget_sec);
  std::size_t executed = 0;
  std::size_t breaches = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (options.max_cases == 0 || executed < options.max_cases)) {
    coca::adv::FuzzCase c = fuzzer.next_case();
    // Sharded runs multiply each case by the neighbor count; keep the
    // payload scale bounded so the sweep stays a search, not a bench.
    c.ell = std::min<std::size_t>(c.ell, 256);
    shard.neighbor_seed =
        coca::Rng::derive_stream_seed(options.seed, 0x5A4DULL + executed);
    const coca::engine::IsolationReport report =
        coca::engine::check_isolation(c, shard);
    ++executed;
    if (report.ok()) continue;
    ++breaches;
    std::cout << "isolation breach (" << c.protocol << ", n=" << c.n
              << ", mutation seed=" << c.mutation.seed << "):\n";
    for (const auto& v : report.violations) {
      std::cout << "  " << v << "\n";
    }
    if (!corpus_out.empty()) {
      CorpusEntry entry;
      entry.c = c;
      entry.violations = report.violations;
      entry.note = "sharded-engine isolation victim";
      const std::string path = corpus_out + "/sharded-" + c.protocol + "-" +
                               std::to_string(c.mutation.seed) + ".json";
      std::ofstream out(path);
      if (!out) {
        std::cerr << "fuzz_driver: cannot write " << path << "\n";
        return 2;
      }
      out << coca::adv::to_json(entry);
      std::cout << "  wrote " << path << "\n";
    }
  }
  std::cout << "executed " << executed << " sharded cases, " << breaches
            << " isolation breaches\n";
  if (breaches == 0) {
    std::cout << "no violations: every neighbor matched its solo run\n";
  }
  const bool violated = breaches != 0;
  return expect_violation ? (violated ? 0 : 1) : (violated ? 1 : 0);
}

/// Chaos-harness policy for the search: tight local backoff, generous
/// budgets (the point is to find divergence, not budget exhaustion).
coca::svc::ChaosOptions wire_chaos_options(
    const coca::svc::WireFaultPlan& plan) {
  coca::svc::ChaosOptions opt;
  opt.plan = plan;
  opt.round_timeout_ms = 10'000;
  opt.max_attempts = 10;
  opt.backoff_initial_ms = 1;
  opt.backoff_max_ms = 20;
  return opt;
}

void print_wire_failure(const coca::adv::FuzzCase& c,
                        const coca::svc::WireFaultPlan& plan,
                        const coca::svc::ChaosReport& rep) {
  std::cout << "wire-chaos violation (" << c.protocol << ", n=" << c.n
            << ", mutation seed=" << c.mutation.seed << ", "
            << plan.entries.size() << " fault entries):\n";
  if (!rep.mismatch.empty()) std::cout << "  " << rep.mismatch << "\n";
  if (!rep.wired.failure.empty()) {
    std::cout << "  wired failure: " << rep.wired.failure << "\n";
  }
  for (const auto& e : plan.entries) {
    std::cout << "  fault: " << coca::svc::to_string(e.kind) << " at round "
              << e.round << "\n";
  }
}

/// The wire-fault search target: every drawn case rides the chaos harness
/// with a seeded WireFaultPlan. A violation is a run that neither converged
/// bit-identically to the fault-free baseline nor resolved structurally.
/// Counterexamples shrink by greedily dropping plan entries (the case
/// itself is left alone: the plan is the search dimension here) and land in
/// --corpus-out as self-contained coca-wirechaos-v1 reproducers.
int run_wire_fault_search(const FuzzerOptions& options,
                          const std::string& corpus_out,
                          bool expect_violation) {
  coca::adv::Fuzzer fuzzer(options);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(options.budget_sec);
  std::size_t executed = 0;
  std::size_t failures = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (options.max_cases == 0 || executed < options.max_cases)) {
    coca::adv::FuzzCase c = fuzzer.next_case();
    // Each case runs twice (baseline + wired) plus shrink reruns; keep the
    // payload scale bounded so the sweep stays a search.
    c.ell = std::min<std::size_t>(c.ell, 256);
    coca::svc::WireFaultSampleConfig cfg;
    cfg.seed = coca::Rng::derive_stream_seed(options.seed, 0x31BEULL + executed);
    const coca::svc::WireFaultPlan plan =
        coca::svc::sample_wire_fault_plan(cfg);
    ++executed;
    if (plan.empty()) continue;
    const coca::svc::ChaosReport rep =
        coca::svc::run_case_under_wire_faults(c, wire_chaos_options(plan));
    if (rep.ok()) continue;
    ++failures;
    // Greedy entry-wise shrink: drop each fault in turn, keep the drop if
    // the violation survives without it.
    coca::svc::WireFaultPlan shrunk = plan;
    coca::svc::ChaosReport last = rep;
    if (options.shrink) {
      for (std::size_t i = 0; i < shrunk.entries.size();) {
        coca::svc::WireFaultPlan trial = shrunk;
        trial.entries.erase(trial.entries.begin() +
                            static_cast<std::ptrdiff_t>(i));
        const coca::svc::ChaosReport r =
            coca::svc::run_case_under_wire_faults(c, wire_chaos_options(trial));
        if (!r.ok()) {
          shrunk = std::move(trial);
          last = r;
        } else {
          ++i;
        }
      }
    }
    print_wire_failure(c, shrunk, last);
    if (!corpus_out.empty()) {
      CorpusEntry entry;
      entry.c = c;
      entry.violations = {last.mismatch.empty() ? "wired run did not resolve"
                                                : last.mismatch};
      entry.note = "wire-chaos counterexample";
      const std::string path = corpus_out + "/wire-" + c.protocol + "-" +
                               std::to_string(c.mutation.seed) + ".json";
      std::ofstream out(path);
      if (!out) {
        std::cerr << "fuzz_driver: cannot write " << path << "\n";
        return 2;
      }
      out << coca::svc::wire_chaos_to_json(entry, shrunk);
      std::cout << "  wrote " << path << "\n";
    }
  }
  std::cout << "executed " << executed << " wire-chaos cases, " << failures
            << " violations\n";
  if (failures == 0) {
    std::cout << "no violations: every wired run converged bit-identically "
                 "or resolved structurally\n";
  }
  const bool violated = failures != 0;
  return expect_violation ? (violated ? 0 : 1) : (violated ? 1 : 0);
}

/// Re-executes one coca-wirechaos-v1 reproducer deterministically.
int wire_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fuzz_driver: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const coca::svc::WireChaosCase wc =
      coca::svc::wire_chaos_from_json(buf.str());
  std::cout << "wire-replay " << path << " (" << wc.entry.c.protocol
            << ", n=" << wc.entry.c.n << ", seed="
            << wc.entry.c.mutation.seed << ", " << wc.plan.entries.size()
            << " fault entries)\n";
  const coca::svc::ChaosReport rep = coca::svc::run_case_under_wire_faults(
      wc.entry.c, wire_chaos_options(wc.plan));
  if (rep.identical) {
    std::cout << "  recovered bit-identically ("
              << rep.stats.client_outages << " outages, "
              << rep.stats.daemon_replayed_rounds << " rounds replayed)\n";
    return 0;
  }
  if (rep.structured) {
    std::cout << "  resolved structurally: "
              << (rep.wired.failure.empty() ? "per-party outcomes"
                                            : rep.wired.failure)
              << "\n";
    return 0;
  }
  print_wire_failure(wc.entry.c, wc.plan, rep);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzerOptions options;
  options.sizes = {4, 7};
  std::string corpus_out;
  std::string replay_path;
  std::string wire_replay_path;
  bool expect_violation = false;
  bool has_threads = false;
  bool sharded = false;
  bool wire_faults = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--budget-sec") {
        options.budget_sec = std::stod(arg_value(argc, argv, i, arg));
      } else if (arg == "--iters") {
        options.max_cases = std::stoull(arg_value(argc, argv, i, arg));
      } else if (arg == "--protocols") {
        options.protocols = split_csv(arg_value(argc, argv, i, arg));
      } else if (arg == "--n") {
        options.sizes.clear();
        for (const auto& s : split_csv(arg_value(argc, argv, i, arg))) {
          options.sizes.push_back(std::stoi(s));
        }
      } else if (arg == "--seed") {
        options.seed = std::stoull(arg_value(argc, argv, i, arg));
      } else if (arg == "--threads") {
        options.threads = std::stoi(arg_value(argc, argv, i, arg));
        has_threads = true;
      } else if (arg == "--faults") {
        options.faults = true;
      } else if (arg == "--no-shrink") {
        options.shrink = false;
      } else if (arg == "--corpus-out") {
        corpus_out = arg_value(argc, argv, i, arg);
      } else if (arg == "--replay") {
        replay_path = arg_value(argc, argv, i, arg);
      } else if (arg == "--expect-violation") {
        expect_violation = true;
      } else if (arg == "--sharded") {
        sharded = true;
      } else if (arg == "--wire-faults") {
        wire_faults = true;
      } else if (arg == "--wire-replay") {
        wire_replay_path = arg_value(argc, argv, i, arg);
      } else if (arg == "--list") {
        for (const auto& p : coca::adv::known_protocols()) {
          std::cout << p << "\n";
        }
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad value for " + arg);
    } catch (const std::out_of_range&) {
      usage("bad value for " + arg);
    }
  }

  if (sharded && wire_faults) usage("--sharded and --wire-faults conflict");

  try {
    if (!wire_replay_path.empty()) {
      const int status = wire_replay(wire_replay_path);
      if (status == 2) return 2;
      return expect_violation ? (status == 1 ? 0 : 1) : status;
    }

    if (!replay_path.empty()) {
      const int status =
          replay(replay_path, options.threads, has_threads, sharded);
      if (status == 2) return 2;
      return expect_violation ? (status == 1 ? 0 : 1) : status;
    }

    if (wire_faults) {
      return run_wire_fault_search(options, corpus_out, expect_violation);
    }

    if (sharded) {
      return run_sharded_search(options, corpus_out, expect_violation);
    }

    coca::adv::Fuzzer fuzzer(options);
    const auto report = fuzzer.run();
    std::cout << "executed " << report.executed << " cases:";
    for (const auto& [proto, count] : report.cases_by_protocol) {
      std::cout << " " << proto << "=" << count;
    }
    std::cout << "\n";
    for (const auto& entry : report.violations) {
      std::cout << "violation (" << entry.c.protocol << ", n=" << entry.c.n
                << ", mutation seed=" << entry.c.mutation.seed << "):\n";
      for (const auto& v : entry.violations) {
        std::cout << "  " << v << "\n";
      }
      if (!corpus_out.empty()) {
        const std::string path = corpus_out + "/" + entry.c.protocol + "-" +
                                 std::to_string(entry.c.mutation.seed) +
                                 ".json";
        std::ofstream out(path);
        if (!out) {
          std::cerr << "fuzz_driver: cannot write " << path << "\n";
          return 2;
        }
        out << coca::adv::to_json(entry);
        std::cout << "  wrote " << path << "\n";
        // Attach a canonical (timing-free, schedule-independent) metrics
        // trace of the minimized counterexample next to the entry.
        namespace obs = coca::obs;
        obs::Tracer tracer(obs::Tracer::Options{/*timing=*/false});
        const auto traced =
            coca::adv::execute_case(entry.c, /*transcript=*/nullptr, &tracer);
        obs::RunMeta meta;
        meta.protocol = entry.c.protocol;
        meta.n = entry.c.n;
        meta.t = entry.c.t;
        meta.ell_bits = entry.c.ell;
        meta.seed = entry.c.input_seed;
        meta.threads = entry.c.threads;
        meta.notes = "fuzz counterexample, mutation seed " +
                     std::to_string(entry.c.mutation.seed);
        const std::string trace_path =
            corpus_out + "/" + entry.c.protocol + "-" +
            std::to_string(entry.c.mutation.seed) + ".trace.json";
        std::ofstream trace_out(trace_path);
        if (!trace_out) {
          std::cerr << "fuzz_driver: cannot write " << trace_path << "\n";
          return 2;
        }
        trace_out << obs::metrics_json(tracer, meta,
                                       obs::stats_view(traced.stats),
                                       /*include_timing=*/false);
        std::cout << "  wrote " << trace_path << "\n";
      }
    }
    if (report.violations.empty()) {
      std::cout << "no violations: every execution satisfied the oracle\n";
    }
    const bool violated = !report.violations.empty();
    return expect_violation ? (violated ? 0 : 1) : (violated ? 1 : 0);
  } catch (const std::exception& e) {
    std::cerr << "fuzz_driver: " << e.what() << "\n";
    return 2;
  }
}
