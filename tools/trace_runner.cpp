// trace_runner: run one protocol execution with the observability layer on
// and export its trace in any of three formats.
//
//   trace_runner --protocol PiZ --n 13 --ell 262144 --perfetto pi_z.trace.json
//   trace_runner --protocol LongBAPlus --metrics m.json --no-timing
//   trace_runner --protocol FixedLengthCA --corrupted 1,5 --table
//   trace_runner --protocol PiN --fault crash-recovery --f 2 --metrics -
//
// The execution path is the fuzzer's shared harness (adv::execute_case), so
// a traced run sees exactly the bits/rounds the invariant oracle checks.
// `--perfetto` writes Chrome trace_event JSON (chrome://tracing or
// ui.perfetto.dev), `--metrics` writes the flat coca-metrics-v1 JSON, and
// `--table` prints the plain-text round table; "-" means stdout. With no
// output option, --table is implied. `--no-timing` switches the tracer to
// canonical mode: all nanosecond fields are zero/omitted and the metrics
// JSON is byte-identical across execution schedules.
//
// Exit status: 0 = run ok (invariants held), 1 = an oracle violation or a
// run failure, 2 = usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include <unistd.h>

#include "adversary/degradation.h"
#include "adversary/fuzzer.h"
#include "obs/adapt.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "svc/client.h"
#include "svc/server.h"

namespace {

using namespace coca;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "trace_runner: " << error << "\n\n";
  std::cerr
      << "usage: trace_runner [options]\n"
         "  --protocol NAME    target (default PiZ); one of the fuzzer's\n"
         "                     known protocols\n"
         "  --n N              party count (default 13)\n"
         "  --ell BITS         input bit-length scale (default 4096)\n"
         "  --seed S           honest workload seed (default 42)\n"
         "  --threads K        ExecPolicy (0 = auto/serial, default 0)\n"
         "  --corrupted IDS    comma-separated byzantine ids (Mutator-wrapped)\n"
         "  --fault KIND       environment faults: crash-stop, crash-recovery,\n"
         "                     link-cut, partition, shuffle\n"
         "  --f N              charged parties for --fault (default t)\n"
         "  --perfetto FILE    write Chrome/Perfetto trace_event JSON\n"
         "  --metrics FILE     write coca-metrics-v1 JSON\n"
         "  --table            print the plain-text round table\n"
         "  --no-timing        canonical mode: omit all wall-clock fields\n"
         "  --wire             route every round through an in-process epoll\n"
         "                     daemon over a UDS loopback (same bits, traced\n"
         "                     over the real socket transport)\n"
         "FILE may be - for stdout.\n";
  std::exit(2);
}

std::vector<int> parse_ids(const std::string& s) {
  std::vector<int> ids;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) usage("empty id in list '" + s + "'");
    ids.push_back(std::stoi(item));
  }
  return ids;
}

adv::FaultKind parse_fault(const std::string& s) {
  for (const adv::FaultKind kind : adv::all_fault_kinds()) {
    if (s == adv::to_string(kind)) return kind;
  }
  usage("unknown fault kind '" + s + "'");
}

bool write_out(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "trace_runner: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  adv::FuzzCase c;
  c.protocol = "PiZ";
  c.n = 13;
  c.t = -1;  // default (n - 1) / 3, resolved after parsing
  c.ell = 4096;
  c.input_seed = 42;
  std::string fault_kind;
  int fault_f = -1;
  std::string perfetto_path;
  std::string metrics_path;
  bool table = false;
  bool timing = true;
  bool wire = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--protocol") {
        c.protocol = next();
      } else if (arg == "--n") {
        c.n = std::stoi(next());
      } else if (arg == "--ell") {
        c.ell = std::stoul(next());
      } else if (arg == "--seed") {
        c.input_seed = std::stoull(next());
      } else if (arg == "--threads") {
        c.threads = std::stoi(next());
      } else if (arg == "--corrupted") {
        c.corrupted = parse_ids(next());
      } else if (arg == "--fault") {
        fault_kind = next();
      } else if (arg == "--f") {
        fault_f = std::stoi(next());
      } else if (arg == "--perfetto") {
        perfetto_path = next();
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--table") {
        table = true;
      } else if (arg == "--no-timing") {
        timing = false;
      } else if (arg == "--wire") {
        wire = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad numeric value for " + arg);
    }
  }
  if (c.t < 0) c.t = (c.n - 1) / 3;
  if (!fault_kind.empty()) {
    const adv::FaultKind kind = parse_fault(fault_kind);
    const int f = kind == adv::FaultKind::kShuffle ? 0
                  : fault_f < 0                    ? c.t
                                                  : fault_f;
    try {
      c.faults = adv::degradation_plan(kind, f, c.n);
    } catch (const std::exception& e) {
      usage(e.what());
    }
  } else if (fault_f >= 0) {
    usage("--f needs --fault");
  }
  if (perfetto_path.empty() && metrics_path.empty()) table = true;

  obs::Tracer tracer(obs::Tracer::Options{timing});
  adv::FuzzOutcome outcome;
  try {
    adv::ExecHooks hooks;
    hooks.tracer = &tracer;
    // --wire: stand up an in-process daemon on a private UDS path and
    // route every delivered round through it. The trace then covers the
    // identical bits travelling over the real socket transport.
    std::unique_ptr<svc::Daemon> daemon;
    std::unique_ptr<svc::WireClient> client;
    std::unique_ptr<svc::WireSession> session;
    std::string uds_path;
    if (wire) {
      uds_path = "/tmp/coca-trace-" + std::to_string(::getpid()) + ".sock";
      svc::DaemonOptions dopt;
      dopt.uds_path = uds_path;
      daemon = std::make_unique<svc::Daemon>(dopt);
      daemon->start();
      client = svc::WireClient::connect_uds_path(uds_path);
      session = client->open(c.n, c.t);
      hooks.router = session.get();
    }
    outcome = adv::execute_case(c, hooks);
    session.reset();
    client.reset();
    if (daemon) {
      daemon->stop();
      ::unlink(uds_path.c_str());
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_runner: run failed: " << e.what() << "\n";
    return 1;
  }

  obs::RunMeta meta;
  meta.protocol = c.protocol;
  meta.n = c.n;
  meta.t = c.t;
  meta.ell_bits = c.ell;
  meta.seed = c.input_seed;
  meta.threads = c.threads;
  if (!fault_kind.empty()) {
    meta.notes = "fault=" + fault_kind + " f=" +
                 std::to_string(c.faults.charged(c.n).size());
  } else if (!c.corrupted.empty()) {
    meta.notes = "corrupted=" + std::to_string(c.corrupted.size());
  }
  const obs::StatsView view = obs::stats_view(outcome.stats);

  bool io_ok = true;
  if (!perfetto_path.empty()) {
    io_ok &= write_out(perfetto_path, obs::chrome_trace_json(tracer));
  }
  if (!metrics_path.empty()) {
    io_ok &= write_out(metrics_path, obs::metrics_json(tracer, meta, view,
                                                       /*include_timing=*/timing));
  }
  if (table) std::cout << obs::round_table(tracer, view);

  for (const std::string& v : outcome.verdict.violations) {
    std::cerr << "trace_runner: violation: " << v << "\n";
  }
  if (!outcome.verdict.ok() || !io_ok) return 1;
  std::cerr << "trace_runner: " << c.protocol << " n=" << c.n
            << " ell=" << c.ell << ": " << outcome.stats.rounds << " rounds, "
            << outcome.stats.honest_bits() << " honest bits\n";
  return 0;
}
