// coca_serve: the transport daemon as a standalone process.
//
//   coca_serve --uds /tmp/coca.sock                 # UDS listener
//   coca_serve --tcp 7420                           # TCP loopback listener
//   coca_serve --uds /tmp/coca.sock --tcp 0         # both (0 = ephemeral)
//   coca_serve --uds /tmp/coca.sock --idle-ms 5000  # shorter session idle
//
// Runs the epoll loop (src/svc/server.h) on the main thread until SIGINT/
// SIGTERM, then prints the final counters to stderr and exits 0. Clients
// connect with svc::WireClient (or anything speaking the frame protocol in
// src/svc/frame.h) and open agreement sessions; each session synchronizes
// the rounds of one protocol instance whose parties run client-side.
//
// Exit status: 0 = clean shutdown on signal, 1 = failed to bind, 2 = usage.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.h"

namespace {

using namespace coca;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "coca_serve: " << error << "\n\n";
  std::cerr << "usage: coca_serve [options]\n"
               "  --uds PATH       listen on a Unix-domain socket at PATH\n"
               "  --tcp PORT       listen on 127.0.0.1:PORT (0 = ephemeral,\n"
               "                   bound port printed to stderr)\n"
               "  --idle-ms MS     kill sessions idle for MS (default 30000)\n"
               "  --grace-ms MS    retain disconnected sessions for MS\n"
               "                   awaiting kResume (0 disables resumption;\n"
               "                   default 10000)\n"
               "  --replay-rounds N  per-session replay-log depth (default 8)\n"
               "  --no-adopt       reject kResume tokens this daemon did not\n"
               "                   issue (default: adopt, for restarts)\n"
               "At least one of --uds / --tcp is required.\n";
  std::exit(2);
}

svc::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  svc::DaemonOptions options;
  bool tcp_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--uds") {
        options.uds_path = next();
      } else if (arg == "--tcp") {
        options.tcp = true;
        tcp_set = true;
        options.tcp_port = static_cast<std::uint16_t>(std::stoi(next()));
      } else if (arg == "--idle-ms") {
        options.idle_timeout_ms = std::stoi(next());
        if (options.idle_timeout_ms < 1) usage("--idle-ms must be >= 1");
      } else if (arg == "--grace-ms") {
        options.resume_grace_ms = std::stoi(next());
        if (options.resume_grace_ms < 0) usage("--grace-ms must be >= 0");
      } else if (arg == "--replay-rounds") {
        options.replay_log_rounds = std::stoi(next());
        if (options.replay_log_rounds < 0) {
          usage("--replay-rounds must be >= 0");
        }
      } else if (arg == "--no-adopt") {
        options.adopt_unknown_resume = false;
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else {
        usage("unknown option " + arg);
      }
    } catch (const std::invalid_argument&) {
      usage("bad numeric value for " + arg);
    }
  }
  if (options.uds_path.empty() && !tcp_set) {
    usage("need --uds and/or --tcp");
  }

  try {
    svc::Daemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (!options.uds_path.empty()) {
      std::cerr << "coca_serve: listening on uds " << options.uds_path << "\n";
    }
    if (options.tcp) {
      std::cerr << "coca_serve: listening on 127.0.0.1:" << daemon.tcp_port()
                << "\n";
    }
    daemon.run();
    g_daemon = nullptr;
    const svc::DaemonStats& s = daemon.stats();
    std::cerr << "coca_serve: shutting down: "
              << s.connections_accepted.load() << " connections, "
              << s.sessions_opened.load() << " sessions ("
              << s.sessions_closed.load() << " closed, "
              << s.sessions_idle_killed.load() << " idle-killed), "
              << s.rounds_committed.load() << " rounds, "
              << s.frames_received.load() << " frames, "
              << s.bytes_received.load() << " bytes, "
              << s.protocol_errors.load() << " protocol errors\n"
              << "coca_serve: recovery: "
              << s.reconnects.load() << " reconnects, "
              << s.resumed_sessions.load() << " resumed sessions, "
              << s.replayed_rounds.load() << " replayed rounds ("
              << s.replayed_bytes.load() << " bytes), "
              << s.heartbeats_missed.load() << " heartbeats missed, "
              << s.injected_faults.load() << " injected faults\n";
  } catch (const std::exception& e) {
    std::cerr << "coca_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
